"""Command-line interface.

    python -m repro migrate lisp-del --strategy pure-iou --prefetch 1
    python -m repro migrate pm-mid --strategy adaptive --batch 8 --pipeline 4
    python -m repro sweep pm-start
    python -m repro chain pm-start --path alpha beta gamma --run 0.4
    python -m repro precopy pm-mid
    python -m repro balance chess chess pm-mid --hosts 3
    python -m repro stress --hosts 16 --procs 64 --seed 7
    python -m repro serve --services kv matmul stream --strategy adaptive
    python -m repro report EXPERIMENTS.md
    python -m repro analyze trace.json
    python -m repro health trace.json --html health.html
    python -m repro profile stress --hosts 8 --procs 16
    python -m repro diff before.json after.json
    python -m repro workloads
"""

import argparse
import sys

from repro.cluster.stress import ARRIVALS
from repro.serve.workloads import SERVING
from repro.faults import FaultPlan, FaultPlanError
from repro.migration.plan import TransferOptions
from repro.migration.strategy import PURE_COPY, PURE_IOU, RESIDENT_SET, Strategy
from repro.testbed import Testbed
from repro.workloads.registry import WORKLOADS


def _add_common(parser, trace=False, faults=False):
    parser.add_argument("--seed", type=int, default=1987)
    parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "run under the host-time engine profiler and print the "
            "cost-center table afterwards (zero overhead when off; "
            "simulated results are byte-identical either way — see "
            "`repro profile` for export options)"
        ),
    )
    if trace:
        parser.add_argument(
            "--trace",
            metavar="FILE",
            default=None,
            help=(
                "record spans + metrics and write a Chrome trace-event "
                "JSON file (open in Perfetto or chrome://tracing; "
                "render with `repro inspect FILE`)"
            ),
        )
    if faults:
        parser.add_argument(
            "--faults",
            metavar="PLAN.json",
            default=None,
            help=(
                "inject failures from a fault-plan JSON file (loss, "
                "partitions, crashes, flusher; see docs/fault-injection.md)"
            ),
        )


def _add_transfer(parser, prefetch=True):
    """Register the uniform transfer knobs on one subcommand.

    Every migration-running command accepts the same
    ``--prefetch/--batch/--pipeline`` trio (``sweep`` omits
    ``--prefetch`` because it sweeps that axis itself) plus the
    content-store pair ``--store/--dedup``; the values feed one
    :class:`~repro.migration.plan.TransferOptions` record.
    """
    if prefetch:
        parser.add_argument(
            "--prefetch", type=int, default=0, metavar="N",
            help="extra contiguous pages the backer returns per request",
        )
    parser.add_argument(
        "--batch", type=int, default=1, metavar="N",
        help=(
            "pages targeted per batched Imaginary Read Request "
            "(1 = classic per-page faults)"
        ),
    )
    parser.add_argument(
        "--pipeline", type=int, default=1, metavar="D",
        help=(
            "reply/shipment pipeline depth "
            "(1 = serial whole-message transfers)"
        ),
    )
    parser.add_argument(
        "--store", action="store_true",
        help=(
            "enable the cluster content-addressed page store "
            "(multi-source imaginary-fault service; "
            "see docs/content-store.md)"
        ),
    )
    parser.add_argument(
        "--dedup", action="store_true",
        help=(
            "also dedup shipped pages on the wire against the "
            "destination's content store (implies --store)"
        ),
    )


def _add_telemetry(parser):
    """Register the continuous-telemetry knobs on one subcommand."""
    parser.add_argument(
        "--sample-period", type=float, default=0.0, metavar="S",
        help=(
            "sample fleet gauges every S simulated seconds into the "
            "trace (0 = off; view with `repro health`)"
        ),
    )
    parser.add_argument(
        "--slo", metavar="FILE", default=None,
        help=(
            "evaluate SLO objectives from a JSON spec online "
            "(burn-rate engine; see docs/observability.md)"
        ),
    )


def _load_slo(args, out):
    """(raw spec, parsed SLOs, exit code) for ``--slo FILE``.

    A missing or malformed spec reports cleanly (exit 2) instead of a
    traceback.  The raw document feeds :class:`StressConfig` (which
    serialises it into the determinism-hash input); the parsed tuple
    feeds the testbed entry points directly.
    """
    import json as json_module

    from repro.obs.slo import SLOError, parse_slos

    path = getattr(args, "slo", None)
    if path is None:
        return None, (), 0
    try:
        with open(path, "r", encoding="utf-8") as handle:
            raw = json_module.load(handle)
    except OSError as error:
        out(f"cannot read SLO spec {path!r}: {error}")
        return None, (), 2
    except json_module.JSONDecodeError as error:
        out(f"bad SLO spec {path!r}: not valid JSON ({error})")
        return None, (), 2
    try:
        slos = parse_slos(raw)
    except SLOError as error:
        out(f"bad SLO spec {path!r}: {error}")
        return None, (), 2
    return raw, tuple(slos), 0


def _load_transfer(args, out):
    """(knobs dict, exit code): the validated transfer flags.

    Out-of-range values report cleanly (exit 2) instead of a
    traceback.  The dict feeds ``options=`` on the testbed entry
    points, which merge it with their per-command strategy default.
    """
    knobs = {
        "prefetch": getattr(args, "prefetch", 0),
        "batch": args.batch,
        "pipeline": args.pipeline,
        "store": getattr(args, "store", False),
        "dedup": getattr(args, "dedup", False),
    }
    try:
        TransferOptions(**knobs)
    except ValueError as error:
        out(f"bad transfer options: {error}")
        return None, 2
    return knobs, 0


def _load_faults(args, out):
    """(plan, exit_code): the plan named by ``--faults``, or None.

    A bad plan file reports cleanly (exit 2) instead of a traceback.
    """
    path = getattr(args, "faults", None)
    if path is None:
        return None, 0
    try:
        return FaultPlan.from_json(path), 0
    except OSError as error:
        out(f"cannot read fault plan {path!r}: {error}")
        return None, 2
    except FaultPlanError as error:
        out(f"bad fault plan {path!r}: {error}")
        return None, 2


def _print_fault_stats(result, out):
    """Report what the injected faults did to one trial."""
    out(f"outcome           {result.outcome}")
    if result.failure:
        out(f"failure           {result.failure}")
    out(f"fragments dropped {result.link_drops}  "
        f"(retransmits {result.retransmits}, duplicates {result.duplicates})")
    if result.flushed_pages:
        out(f"pages flushed     {result.flushed_pages}")


def _write_trace(path, runs, out):
    """Export instrumented runs to ``path`` and tell the user.

    Returns an exit code: the trial itself succeeded by the time this
    runs, so a bad path reports cleanly instead of dumping a
    traceback over the results.
    """
    from repro.obs import write_chrome

    try:
        write_chrome(path, runs)
    except OSError as error:
        out(f"cannot write trace {path!r}: {error}")
        return 1
    out(f"trace written to {path} ({len(runs)} run(s); "
        f"view with `repro inspect {path}` or in Perfetto)")
    return 0


def _host_meta(obs_list):
    """Summed ``{events_dispatched, wall_s}`` across runs' obs objects,
    or None when none of them drove an engine."""
    metas = []
    for obs in obs_list:
        getter = getattr(obs, "host_meta", None)
        meta = getter() if getter is not None else None
        if meta is not None:
            metas.append(meta)
    if not metas:
        return None
    return {
        "events_dispatched": sum(m["events_dispatched"] for m in metas),
        "wall_s": sum(m["wall_s"] for m in metas),
    }


def _report_run_meta(out, obs_list, fallback_events=None):
    """Print the unified run-metadata block every trial command shares:
    events dispatched plus host wall-clock (and events/s).  Returns the
    metadata dict so ``--json`` payloads can embed it.

    The ``wall clock`` line is host-volatile by nature; determinism
    checks compare command output with that line filtered out.
    """
    meta = _host_meta(obs_list)
    if meta is None:
        if fallback_events is not None:
            out(f"events dispatched {fallback_events:,}")
        return None
    out(f"events dispatched {meta['events_dispatched']:,}")
    rate = (
        meta["events_dispatched"] / meta["wall_s"]
        if meta["wall_s"] > 0 else 0.0
    )
    out(f"wall clock        {meta['wall_s']:.3f}s host  "
        f"({rate:,.0f} events/s)")
    return meta


def _write_json(path, payload, out):
    """Dump one command's ``--json`` payload; clean error on a bad path."""
    import json as json_module

    try:
        with open(path, "w", encoding="utf-8") as handle:
            json_module.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    except OSError as error:
        out(f"cannot write {path!r}: {error}")
        return 1
    out(f"wrote {path}")
    return 0


def _require_schema(runs, path, out):
    """Reject pre-schema traces for commands that need the stamp."""
    from repro.obs import TRACE_SCHEMA

    if runs and runs[0].trace_schema is None:
        out(f"{path} has no trace_schema stamp (exported before schema "
            f"{TRACE_SCHEMA}) — re-export it with this build")
        return 2
    return 0


def build_parser():
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Attacking the Process Migration Bottleneck' "
            "(Zayas, SOSP 1987) on a simulated Accent testbed."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def _add_json(parser):
        parser.add_argument(
            "--json", metavar="FILE", default=None,
            help=(
                "also write the trial report (with the unified "
                "events_dispatched/wall_s host block) as JSON"
            ),
        )

    migrate = commands.add_parser("migrate", help="run one migration trial")
    migrate.add_argument("workload", choices=sorted(WORKLOADS))
    migrate.add_argument(
        "--strategy", choices=Strategy.names(), default=PURE_IOU
    )
    _add_json(migrate)
    _add_transfer(migrate)
    _add_telemetry(migrate)
    _add_common(migrate, trace=True, faults=True)

    sweep = commands.add_parser(
        "sweep", help="strategy × prefetch sweep for one workload"
    )
    sweep.add_argument("workload", choices=sorted(WORKLOADS))
    _add_json(sweep)
    _add_transfer(sweep, prefetch=False)
    _add_common(sweep, trace=True, faults=True)

    chain = commands.add_parser("chain", help="multi-hop migration")
    chain.add_argument("workload", choices=sorted(WORKLOADS))
    chain.add_argument("--path", nargs="+", default=["alpha", "beta", "gamma"])
    chain.add_argument(
        "--run",
        type=float,
        nargs="*",
        default=None,
        help="trace fraction to execute at each intermediate host",
    )
    chain.add_argument("--strategy", choices=Strategy.names(), default=PURE_IOU)
    _add_json(chain)
    _add_transfer(chain)
    _add_common(chain, trace=True, faults=True)

    precopy = commands.add_parser(
        "precopy", help="iterative pre-copy baseline (V system)"
    )
    precopy.add_argument("workload", choices=sorted(WORKLOADS))
    precopy.add_argument("--dirty-rate", type=float, default=None)
    _add_json(precopy)
    _add_transfer(precopy)
    _add_common(precopy, trace=True, faults=True)

    balance = commands.add_parser(
        "balance", help="automatic-migration scenario"
    )
    balance.add_argument("workloads", nargs="+")
    balance.add_argument("--hosts", type=int, default=3)
    balance.add_argument(
        "--policy",
        choices=("none", "eager-copy", "breakeven"),
        default="breakeven",
    )
    balance.add_argument(
        "--inflight", type=int, default=None, metavar="K",
        help=(
            "allow up to K concurrent migrations per host via the "
            "cluster scheduler (default: serialize moves)"
        ),
    )
    _add_json(balance)
    _add_transfer(balance)
    _add_telemetry(balance)
    _add_common(balance, trace=True, faults=True)

    stress = commands.add_parser(
        "stress",
        help="deterministic cluster-scale concurrent-migration stress run",
    )
    stress.add_argument("--hosts", type=int, default=4)
    stress.add_argument("--procs", type=int, default=8)
    stress.add_argument(
        "--migrations", type=int, default=None,
        help="migration requests to issue (default: one per process)",
    )
    stress.add_argument(
        "--inflight", type=int, default=4, metavar="K",
        help="per-host in-flight migration cap",
    )
    stress.add_argument(
        "--queue-limit", type=int, default=None,
        help="reject submissions beyond this queue depth (default: unbounded)",
    )
    stress.add_argument(
        "--arrival", choices=ARRIVALS, default="uniform",
        help="inter-arrival pattern for migration requests",
    )
    stress.add_argument(
        "--rate", type=float, default=2.0,
        help="long-run migration request rate (per simulated second)",
    )
    stress.add_argument(
        "--burst-size", type=int, default=4,
        help="requests per burst when --arrival burst",
    )
    stress.add_argument(
        "--workloads", nargs="+", default=["minprog"],
        choices=sorted(WORKLOADS), metavar="NAME",
        help="workload mix, assigned round-robin across processes",
    )
    stress.add_argument("--strategy", choices=Strategy.names(), default=PURE_IOU)
    stress.add_argument(
        "--job-seconds", type=float, default=20.0,
        help="target compute seconds per job (paces the trace)",
    )
    stress.add_argument(
        "--json", metavar="FILE", default=None,
        help="also write the canonical result (hash input) as JSON",
    )
    _add_transfer(stress)
    _add_telemetry(stress)
    _add_common(stress, trace=True, faults=True)

    serve = commands.add_parser(
        "serve",
        help=(
            "live request-serving run: seeded traffic through a flow "
            "router while migrations land (during-migration latency)"
        ),
    )
    serve.add_argument(
        "--services", nargs="+", default=["kv", "matmul", "stream"],
        choices=sorted(SERVING), metavar="NAME",
        help="serving workload mix, assigned round-robin across processes",
    )
    serve.add_argument("--hosts", type=int, default=3)
    serve.add_argument(
        "--procs", type=int, default=None,
        help="serving processes (default: one per listed service)",
    )
    serve.add_argument(
        "--clients", type=int, default=2, metavar="N",
        help="client generators per serving process",
    )
    serve.add_argument(
        "--requests", type=int, default=60, metavar="N",
        help="requests each client issues",
    )
    serve.add_argument(
        "--request-arrival", choices=ARRIVALS, default="poisson",
        help="inter-arrival pattern for client requests",
    )
    serve.add_argument(
        "--request-rate", type=float, default=16.0,
        help=(
            "per-client request rate (per simulated second), scaled by "
            "each serving workload's rate_scale"
        ),
    )
    serve.add_argument(
        "--request-burst", type=int, default=8,
        help="requests per burst when --request-arrival burst",
    )
    serve.add_argument(
        "--deadline", type=float, default=5.0, metavar="S",
        help="per-attempt request deadline in simulated seconds (0 = none)",
    )
    serve.add_argument(
        "--retries", type=int, default=1, metavar="N",
        help="retry budget per request after an expired attempt",
    )
    serve.add_argument(
        "--migrations", type=int, default=None,
        help="migration requests to issue (default: one per process)",
    )
    serve.add_argument(
        "--arrival", choices=ARRIVALS, default="uniform",
        help="inter-arrival pattern for migration requests",
    )
    serve.add_argument(
        "--rate", type=float, default=1.0,
        help="migration request rate (per simulated second)",
    )
    serve.add_argument(
        "--inflight", type=int, default=2, metavar="K",
        help="per-host in-flight migration cap",
    )
    serve.add_argument(
        "--strategy", choices=Strategy.names(), default=PURE_IOU
    )
    serve.add_argument(
        "--json", metavar="FILE", default=None,
        help="also write the canonical result (hash input) as JSON",
    )
    _add_transfer(serve)
    _add_telemetry(serve)
    _add_common(serve, trace=True, faults=True)

    faults = commands.add_parser(
        "faults",
        help="fault-injection trial: loss sweep + crash/flusher outcomes",
    )
    faults.add_argument(
        "workload", nargs="?", default="chess", choices=sorted(WORKLOADS)
    )
    faults.add_argument(
        "--strategy", choices=Strategy.names(), default=PURE_IOU
    )
    faults.add_argument(
        "--loss", type=float, nargs="*", default=[0.05],
        help="fragment loss rates to sweep",
    )
    faults.add_argument(
        "--crash", type=float, nargs="*", default=[30.0],
        help="source-crash times to try, with and without the flusher",
    )
    faults.add_argument("--flush-batch", type=int, default=64)
    faults.add_argument("--flush-interval", type=float, default=0.005)
    faults.add_argument(
        "--json", metavar="FILE", default=None,
        help="also write the trial table as deterministic JSON",
    )
    _add_common(faults, trace=True)

    report = commands.add_parser(
        "report", help="regenerate EXPERIMENTS.md (77-trial sweep)"
    )
    report.add_argument("output", nargs="?", default="EXPERIMENTS.md")
    _add_common(report)

    export = commands.add_parser(
        "export", help="write every table/figure dataset as CSV"
    )
    export.add_argument("directory", nargs="?", default="results")
    _add_common(export)

    figures = commands.add_parser(
        "figures", help="render every figure as SVG"
    )
    figures.add_argument("directory", nargs="?", default="figures")
    _add_common(figures)

    inspect = commands.add_parser(
        "inspect", help="render the span tree of a saved --trace file"
    )
    inspect.add_argument("tracefile")
    inspect.add_argument(
        "--top", type=int, default=5,
        help="histograms to show, by observation count",
    )

    analyze = commands.add_parser(
        "analyze",
        help=(
            "critical-path + fault-lifecycle analysis of a saved "
            "--trace file"
        ),
    )
    analyze.add_argument("tracefile")
    analyze.add_argument(
        "--json", metavar="FILE", default=None,
        help="also write the per-run analysis as JSON",
    )

    health = commands.add_parser(
        "health",
        help=(
            "fleet-health dashboard from a --sample-period trace "
            "(timelines, percentile ribbons, SLO violation bands)"
        ),
    )
    health.add_argument("tracefile")
    health.add_argument(
        "--html", metavar="FILE", default=None,
        help="write the self-contained HTML dashboard here",
    )
    health.add_argument(
        "--json", metavar="FILE", default=None,
        help="also write the machine-readable health view as JSON",
    )

    profile = commands.add_parser(
        "profile",
        help=(
            "run any repro subcommand under the host-time engine "
            "profiler: wall-clock self-time per event type / handler / "
            "subsystem, queue costs, allocation counts"
        ),
    )
    profile.add_argument(
        "--top", type=int, default=15, metavar="N",
        help="cost centers to show in the text table",
    )
    profile.add_argument(
        "--json", metavar="FILE", default=None,
        help="also write the full profile report as JSON",
    )
    profile.add_argument(
        "--flamegraph", metavar="FILE", default=None,
        help=(
            "write a speedscope-format flamegraph (open at "
            "https://www.speedscope.app)"
        ),
    )
    profile.add_argument(
        "subcommand", nargs=argparse.REMAINDER, metavar="COMMAND ...",
        help="the repro command line to run under the profiler",
    )

    diff = commands.add_parser(
        "diff",
        help=(
            "compare two exported traces: migrations aligned by trace "
            "id / signature, per-phase sim-time deltas (summing exactly "
            "to the root delta), bytes/fault/events-per-second deltas"
        ),
    )
    diff.add_argument("trace_a", help="baseline trace (A)")
    diff.add_argument("trace_b", help="candidate trace (B)")
    diff.add_argument(
        "--json", metavar="FILE", default=None,
        help="also write the diff report as JSON",
    )

    commands.add_parser("workloads", help="list the seven representatives")
    return parser


def cmd_migrate(args, out):
    """Run one migration trial and print its report."""
    plan, code = _load_faults(args, out)
    if code:
        return code
    knobs, code = _load_transfer(args, out)
    if code:
        return code
    _, slos, code = _load_slo(args, out)
    if code:
        return code
    bed = Testbed(
        seed=args.seed, instrument=bool(args.trace), faults=plan,
        sample_period=args.sample_period, slos=slos,
    )
    result = bed.migrate(
        args.workload, strategy=args.strategy, options=knobs
    )
    out(f"workload          {result.spec.name}")
    knob_report = f"prefetch {result.prefetch}"
    if result.options.batched:
        knob_report += f", batch {result.batch}, pipeline {result.pipeline}"
    if result.options.store_enabled:
        knob_report += ", dedup" if result.options.dedup else ", store"
    out(f"strategy          {result.strategy} ({knob_report})")
    if result.outcome == "completed":
        out(f"excise            {result.excise_s:.2f}s  "
            f"(AMap {result.excise_amap_s:.2f}s, "
            f"RIMAS {result.excise_rimas_s:.2f}s)")
        out(f"core message      {result.core_transfer_s:.2f}s")
        out(f"space transfer    {result.transfer_s:.2f}s")
        out(f"insert            {result.insert_s:.3f}s")
        out(f"migration total   {result.migration_s:.2f}s")
        out(f"remote execution  {result.exec_s:.2f}s")
    out(f"bytes on wire     {result.bytes_total:,}")
    out(f"message handling  {result.message_handling_s:.2f}s")
    out(f"pages moved       {result.pages_transferred} "
        f"({100 * result.fraction_of_real_transferred:.1f}% of RealMem)")
    if result.prefetch_hit_ratio is not None:
        out(f"prefetch hits     {result.prefetch_hit_ratio:.0%}")
    if plan is not None:
        _print_fault_stats(result, out)
    meta = _report_run_meta(out, [result.obs])
    out(f"verified          {result.verified}")
    if args.json:
        payload = {
            "command": "migrate",
            "workload": result.spec.name,
            "strategy": result.strategy,
            "options": {
                "prefetch": result.prefetch,
                "batch": result.batch,
                "pipeline": result.pipeline,
                "store": result.options.store,
                "dedup": result.options.dedup,
            },
            "outcome": result.outcome,
            "bytes_total": result.bytes_total,
            "pages_transferred": result.pages_transferred,
            "verified": result.verified,
        }
        if result.outcome == "completed":
            payload.update({
                "excise_s": result.excise_s,
                "core_transfer_s": result.core_transfer_s,
                "transfer_s": result.transfer_s,
                "insert_s": result.insert_s,
                "migration_s": result.migration_s,
                "exec_s": result.exec_s,
            })
        if meta is not None:
            payload["host"] = meta
        if _write_json(args.json, payload, out):
            return 1
    if args.trace:
        if _write_trace(
            args.trace,
            [(f"migrate-{result.spec.name}-{result.strategy}", result.obs)],
            out,
        ):
            return 1
    return 0 if result.verified else 1


def cmd_sweep(args, out):
    """Print the strategy x prefetch sweep for one workload."""
    plan, code = _load_faults(args, out)
    if code:
        return code
    knobs, code = _load_transfer(args, out)
    if code:
        return code
    bed = Testbed(seed=args.seed, instrument=bool(args.trace), faults=plan)
    traced = []
    copy = bed.migrate(args.workload, strategy=PURE_COPY, options=knobs)
    traced.append((f"{args.workload}-copy", copy.obs))
    if copy.outcome != "completed":
        out(f"{args.workload}: pure-copy baseline {copy.outcome} "
            f"({copy.failure})")
        return 1
    base = copy.transfer_plus_exec_s
    out(f"{args.workload}: pure-copy transfer+exec = {base:.1f}s")
    out(f"{'trial':>10}  {'transfer':>8}  {'exec':>8}  {'speedup':>8}")
    trials = []
    for strategy in (PURE_IOU, RESIDENT_SET):
        for prefetch in (0, 1, 3, 7, 15):
            result = bed.migrate(
                args.workload, strategy=strategy,
                options={**knobs, "prefetch": prefetch},
            )
            tag = "iou" if strategy == PURE_IOU else "rs"
            traced.append((f"{args.workload}-{tag}-pf{prefetch}", result.obs))
            if result.outcome != "completed":
                out(f"{tag + '-pf' + str(prefetch):>10}  {result.outcome:>8}")
                trials.append({
                    "trial": f"{tag}-pf{prefetch}",
                    "outcome": result.outcome,
                })
                continue
            speedup = 100 * (base - result.transfer_plus_exec_s) / base
            out(
                f"{tag + '-pf' + str(prefetch):>10}  {result.transfer_s:>7.2f}s"
                f"  {result.exec_s:>7.2f}s  {speedup:>7.1f}%"
            )
            trials.append({
                "trial": f"{tag}-pf{prefetch}",
                "outcome": result.outcome,
                "transfer_s": result.transfer_s,
                "exec_s": result.exec_s,
                "speedup_pct": speedup,
            })
    meta = _report_run_meta(out, [obs for _, obs in traced])
    if args.json:
        payload = {
            "command": "sweep",
            "workload": args.workload,
            "baseline_transfer_plus_exec_s": base,
            "trials": trials,
        }
        if meta is not None:
            payload["host"] = meta
        if _write_json(args.json, payload, out):
            return 1
    if args.trace:
        if _write_trace(args.trace, traced, out):
            return 1
    return 0


def cmd_chain(args, out):
    """Run a multi-hop migration chain."""
    plan, code = _load_faults(args, out)
    if code:
        return code
    knobs, code = _load_transfer(args, out)
    if code:
        return code
    bed = Testbed(seed=args.seed, instrument=bool(args.trace), faults=plan)
    fractions = args.run
    if fractions is None:
        fractions = [0.0] * (len(args.path) - 2)
    result = bed.migrate_chain(
        args.workload,
        path=tuple(args.path),
        strategy=args.strategy,
        run_fractions=tuple(fractions),
        options=knobs,
    )
    out(f"chain {' -> '.join(result.path)} under {result.strategy}")
    for hop, seconds in enumerate(result.hop_times_s, 1):
        out(f"  hop {hop}: {seconds:.2f}s")
    out(f"end-to-end        {result.end_to_end_s:.2f}s")
    out(f"bytes on wire     {result.bytes_total:,}")
    served = ", ".join(f"{h}={n}" for h, n in result.pages_served.items())
    out(f"pages served by   {served}")
    meta = _report_run_meta(out, [result.obs])
    out(f"verified          {result.verified}")
    if args.json:
        payload = {
            "command": "chain",
            "workload": result.spec.name,
            "strategy": result.strategy,
            "path": list(result.path),
            "hop_times_s": list(result.hop_times_s),
            "end_to_end_s": result.end_to_end_s,
            "bytes_total": result.bytes_total,
            "pages_served": dict(result.pages_served),
            "verified": result.verified,
        }
        if meta is not None:
            payload["host"] = meta
        if _write_json(args.json, payload, out):
            return 1
    if args.trace:
        if _write_trace(
            args.trace,
            [(f"chain-{result.spec.name}-{'-'.join(result.path)}", result.obs)],
            out,
        ):
            return 1
    return 0 if result.verified else 1


def cmd_precopy(args, out):
    """Run the iterative pre-copy baseline."""
    plan, code = _load_faults(args, out)
    if code:
        return code
    knobs, code = _load_transfer(args, out)
    if code:
        return code
    bed = Testbed(seed=args.seed, instrument=bool(args.trace), faults=plan)
    result = bed.migrate_precopy(
        args.workload, dirty_rate_pps=args.dirty_rate, options=knobs
    )
    out(f"pre-copy of {result.spec.name}: {len(result.rounds)} rounds")
    for index, round_ in enumerate(result.rounds, 1):
        out(f"  round {index}: {round_.pages} pages in {round_.seconds:.2f}s")
    out(f"downtime          {result.downtime_s:.2f}s")
    out(f"bytes on wire     {result.bytes_total:,}")
    out(f"pages shipped     {result.pages_shipped} "
        f"(address space holds {result.spec.real_pages})")
    meta = _report_run_meta(out, [result.obs])
    out(f"verified          {result.verified}")
    if args.json:
        payload = {
            "command": "precopy",
            "workload": result.spec.name,
            "rounds": [
                {"pages": round_.pages, "seconds": round_.seconds}
                for round_ in result.rounds
            ],
            "downtime_s": result.downtime_s,
            "bytes_total": result.bytes_total,
            "pages_shipped": result.pages_shipped,
            "verified": result.verified,
        }
        if meta is not None:
            payload["host"] = meta
        if _write_json(args.json, payload, out):
            return 1
    if args.trace:
        if _write_trace(
            args.trace, [(f"precopy-{result.spec.name}", result.obs)], out
        ):
            return 1
    return 0 if result.verified else 1


def cmd_balance(args, out):
    """Run an automatic-migration scenario."""
    from repro.loadbalance import (
        BreakevenPolicy,
        EagerCopyPolicy,
        NoMigrationPolicy,
        Scenario,
    )

    for name in args.workloads:
        if name not in WORKLOADS:
            out(f"unknown workload {name!r}")
            return 2
    policy = {
        "none": NoMigrationPolicy,
        "eager-copy": EagerCopyPolicy,
        "breakeven": BreakevenPolicy,
    }[args.policy]()
    plan, code = _load_faults(args, out)
    if code:
        return code
    knobs, code = _load_transfer(args, out)
    if code:
        return code
    # Only a non-default trio pins the knobs scenario-wide; otherwise
    # the legacy behaviour stands (each policy decision carries its own
    # prefetch).
    _, slos, code = _load_slo(args, out)
    if code:
        return code
    options = knobs if any(
        (knobs["prefetch"], knobs["batch"] > 1, knobs["pipeline"] > 1,
         knobs["store"], knobs["dedup"])
    ) else None
    scenario = Scenario(
        args.workloads, hosts=args.hosts, seed=args.seed,
        instrument=bool(args.trace), faults=plan, options=options,
        sample_period=args.sample_period, slos=slos,
    )
    result = scenario.run(policy, inflight_cap=args.inflight)
    out(f"policy {result.policy_name}: makespan {result.makespan_s:.1f}s, "
        f"{len(result.migrations)} migrations, verified {result.verified}")
    for decision in result.migrations:
        out(f"  {decision}")
    if result.scheduler is not None:
        scheduler = result.scheduler
        counts = ", ".join(
            f"{outcome}={count}"
            for outcome, count in sorted(scheduler.outcome_counts().items())
        )
        out(f"scheduler: cap {scheduler.inflight_cap}/host, "
            f"peak in-flight {scheduler.peak_inflight}, "
            f"peak queue {scheduler.peak_queue}  [{counts}]")
    meta = _report_run_meta(out, [result.obs])
    if args.json:
        payload = {
            "command": "balance",
            "policy": result.policy_name,
            "makespan_s": result.makespan_s,
            "migrations": [str(decision) for decision in result.migrations],
            "verified": result.verified,
        }
        if result.scheduler is not None:
            payload["scheduler"] = {
                "inflight_cap": result.scheduler.inflight_cap,
                "peak_inflight": result.scheduler.peak_inflight,
                "peak_queue": result.scheduler.peak_queue,
                "outcomes": dict(result.scheduler.outcome_counts()),
            }
        if meta is not None:
            payload["host"] = meta
        if _write_json(args.json, payload, out):
            return 1
    if args.trace:
        if _write_trace(
            args.trace, [(f"balance-{result.policy_name}", result.obs)], out
        ):
            return 1
    return 0 if result.verified else 1


def cmd_stress(args, out):
    """Run the deterministic cluster stress harness and print its report."""
    from repro.cluster import StressConfig, run_stress

    plan, code = _load_faults(args, out)
    if code:
        return code
    slo_raw, _, code = _load_slo(args, out)
    if code:
        return code
    try:
        config = StressConfig(
            hosts=args.hosts,
            procs=args.procs,
            migrations=args.migrations,
            inflight_cap=args.inflight,
            queue_limit=args.queue_limit,
            arrival=args.arrival,
            rate_per_s=args.rate,
            burst_size=args.burst_size,
            workloads=args.workloads,
            strategy=args.strategy,
            job_seconds=args.job_seconds,
            seed=args.seed,
            prefetch=args.prefetch,
            batch=args.batch,
            pipeline=args.pipeline,
            store=args.store,
            dedup=args.dedup,
            sample_period=args.sample_period,
            slo=slo_raw,
        )
    except ValueError as error:
        out(f"bad stress configuration: {error}")
        return 2
    result = run_stress(config, instrument=bool(args.trace), faults=plan)
    counts = ", ".join(
        f"{outcome}={count}"
        for outcome, count in sorted(result.outcomes.items())
    ) or "none"
    out(f"stress {config.hosts} hosts x {config.procs} procs, "
        f"{config.migrations} requests ({config.arrival} arrivals at "
        f"{config.rate_per_s:g}/s), cap {config.inflight_cap}/host, "
        f"seed {config.seed}")
    out(f"outcomes          {counts}")
    out(f"makespan          {result.makespan_s:.1f}s  "
        f"(throughput {result.throughput_per_s:.3f} migrations/s)")
    p50 = result.freeze_percentile(0.50)
    p99 = result.freeze_percentile(0.99)
    if p50 is not None:
        out(f"freeze            p50 {p50:.2f}s  p99 {p99:.2f}s")
    out(f"concurrency       peak {result.peak_inflight} in flight "
        f"(sustained {result.sustained_inflight}, "
        f"host peak {result.peak_host_inflight}), "
        f"queue peak {result.peak_queue}")
    out(f"bytes on wire     {result.bytes_total:,}")
    meta = _report_run_meta(
        out, [result.obs], fallback_events=result.events_dispatched
    )
    out(f"verified          {result.verified}")
    out(f"determinism hash  {result.determinism_hash}")
    if args.json:
        # The canonical result dict is the determinism-hash input and
        # must stay host-independent; the volatile host block rides
        # alongside it (determinism checks drop the "host" key).
        payload = result.to_dict()
        if meta is not None:
            payload["host"] = meta
        if _write_json(args.json, payload, out):
            return 1
    if args.trace:
        label = (
            f"stress-{config.hosts}x{config.procs}-"
            f"{config.arrival}-seed{config.seed}"
        )
        if _write_trace(args.trace, [(label, result.obs)], out):
            return 1
    return 0 if result.verified else 1


def cmd_serve(args, out):
    """Run the live request-serving harness and print its report."""
    from repro.cluster import StressConfig
    from repro.serve import ServeError, run_serve

    plan, code = _load_faults(args, out)
    if code:
        return code
    slo_raw, _, code = _load_slo(args, out)
    if code:
        return code
    procs = args.procs if args.procs is not None else len(args.services)
    try:
        config = StressConfig(
            hosts=args.hosts,
            procs=procs,
            migrations=args.migrations,
            inflight_cap=args.inflight,
            arrival=args.arrival,
            rate_per_s=args.rate,
            strategy=args.strategy,
            seed=args.seed,
            prefetch=args.prefetch,
            batch=args.batch,
            pipeline=args.pipeline,
            store=args.store,
            dedup=args.dedup,
            sample_period=args.sample_period,
            slo=slo_raw,
            services=args.services,
            clients_per_service=args.clients,
            requests_per_client=args.requests,
            request_arrival=args.request_arrival,
            request_rate_per_s=args.request_rate,
            request_burst=args.request_burst,
            deadline_s=args.deadline,
            retry_budget=args.retries,
        )
        result = run_serve(config, instrument=bool(args.trace), faults=plan)
    except (ServeError, ValueError) as error:
        out(f"bad serve configuration: {error}")
        return 2
    counts = result.counts
    migrations = ", ".join(
        f"{outcome}={count}"
        for outcome, count in sorted(result.outcomes.items())
    ) or "none"
    out(f"serve {len(config.services)} service kind(s) x "
        f"{config.procs} procs on {config.hosts} hosts, "
        f"{config.clients_per_service} client(s)/proc x "
        f"{config.requests_per_client} requests "
        f"({config.request_arrival} at {config.request_rate_per_s:g}/s), "
        f"seed {config.seed}")
    out(f"requests          issued {counts['issued']}  "
        f"completed {counts['completed']}  dropped {counts['dropped']}  "
        f"retried {counts['retried']}  redirected {counts['redirected']}")

    def latency_line(label, during):
        values = result.latencies(during=during)
        if not values:
            out(f"{label} no completed requests")
            return
        p50 = result.latency_percentile(0.50, during=during)
        p99 = result.latency_percentile(0.99, during=during)
        p999 = result.latency_percentile(0.999, during=during)
        out(f"{label} p50 {p50:.3f}s  p99 {p99:.3f}s  "
            f"p999 {p999:.3f}s  ({len(values)} requests)")

    latency_line("latency (all)    ", None)
    latency_line("during migration ", True)
    for kind in sorted({job.serving.name for job in result.jobs}):
        overall = result.latency_percentile(0.99, kind=kind)
        during = result.latency_percentile(0.99, kind=kind, during=True)
        overall_txt = "-" if overall is None else f"{overall:.3f}s"
        during_txt = "-" if during is None else f"{during:.3f}s"
        out(f"  {kind:<10} p99 {overall_txt}  during-migration p99 "
            f"{during_txt}")
    out(f"migrations        {migrations}  "
        f"(makespan {result.makespan_s:.1f}s)")
    out(f"bytes on wire     {result.bytes_total:,}")
    meta = _report_run_meta(
        out, [result.obs], fallback_events=result.events_dispatched
    )
    out(f"verified          {result.verified}")
    out(f"determinism hash  {result.determinism_hash}")
    if args.json:
        payload = result.to_dict()
        if meta is not None:
            payload["host"] = meta
        if _write_json(args.json, payload, out):
            return 1
    if args.trace:
        label = (
            f"serve-{'-'.join(config.services)}-"
            f"{config.strategy}-seed{config.seed}"
        )
        if _write_trace(args.trace, [(label, result.obs)], out):
            return 1
    return 0 if result.verified else 1


def cmd_faults(args, out):
    """Fault-injection survey: loss sweep plus crash/flusher outcomes.

    One row per trial.  Loss rows show the reliable transport absorbing
    fragment loss; crash rows pair each source-crash time with and
    without the residual-dependency flusher, demonstrating the
    kill-vs-survive contrast of the copy-on-reference caveat.
    """
    from repro.faults import Crash, FaultPlan, FlushConfig, LossRule

    flush = FlushConfig(
        enabled=True,
        batch_pages=args.flush_batch,
        interval_s=args.flush_interval,
    )
    trials = []
    traced = []

    def run(label, plan):
        bed = Testbed(
            seed=args.seed, instrument=bool(args.trace), faults=plan
        )
        result = bed.migrate(args.workload, strategy=args.strategy)
        traced.append((label, result.obs))
        trials.append({
            "trial": label,
            "outcome": result.outcome,
            "drops": result.link_drops,
            "retransmits": result.retransmits,
            "duplicates": result.duplicates,
            "aborts": result.aborts,
            "kills": result.residual_kills,
            "flushed": result.flushed_pages,
            "verified": result.verified,
        })
        return result

    run("baseline", FaultPlan())
    for rate in args.loss:
        run(f"loss={rate:g}", FaultPlan(loss=[LossRule(rate=rate)]))
    source = "alpha"  # first host of the two-machine testbed
    for at in args.crash:
        crash = Crash(host=source, at=at)
        run(f"crash@{at:g}", FaultPlan(crashes=[crash]))
        run(f"crash@{at:g}+flush", FaultPlan(crashes=[crash], flush=flush))

    out(f"{args.workload} under {args.strategy}, seed {args.seed}")
    header = (
        f"{'trial':>18}  {'outcome':>9}  {'drops':>6}  {'retx':>5}  "
        f"{'dup':>4}  {'flushed':>7}  {'verified':>8}"
    )
    out(header)
    for row in trials:
        out(
            f"{row['trial']:>18}  {row['outcome']:>9}  {row['drops']:>6}  "
            f"{row['retransmits']:>5}  {row['duplicates']:>4}  "
            f"{row['flushed']:>7}  {str(row['verified']):>8}"
        )
    if args.json:
        payload = {
            "workload": args.workload,
            "strategy": args.strategy,
            "seed": args.seed,
            "trials": trials,
        }
        if _write_json(args.json, payload, out):
            return 1
    if args.trace:
        if _write_trace(args.trace, traced, out):
            return 1
    # Survival with the flusher (and a clean baseline) is the point;
    # fail loudly if the demonstration did not hold.
    ok = trials[0]["outcome"] == "completed" and all(
        row["outcome"] == "completed"
        for row in trials
        if row["trial"].endswith("+flush")
    )
    return 0 if ok else 1


def cmd_report(args, out):
    """Regenerate the EXPERIMENTS.md report."""
    from repro.experiments.runner import generate_report

    text, matrix = generate_report(seed=args.seed)
    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    out(f"wrote {args.output} ({matrix.run_all()} trials)")
    return 0


def cmd_export(args, out):
    """Export every table/figure dataset as CSV."""
    from repro.experiments.export import export_all
    from repro.experiments.matrix import TrialMatrix

    matrix = TrialMatrix(seed=args.seed)
    written = export_all(matrix, args.directory)
    for name in sorted(written):
        out(f"wrote {written[name]}")
    return 0


def cmd_figures(args, out):
    """Render every figure as SVG."""
    from repro.experiments.figures_svg import render_all
    from repro.experiments.matrix import TrialMatrix

    matrix = TrialMatrix(seed=args.seed)
    written = render_all(matrix, args.directory)
    for name in sorted(written):
        out(f"wrote {written[name]}")
    return 0


def cmd_inspect(args, out):
    """Render the span tree + metric summary of a saved trace file."""
    from repro.obs import load_chrome, render_summary

    try:
        runs = load_chrome(args.tracefile)
    except (OSError, ValueError) as error:
        out(f"cannot read trace {args.tracefile!r}: {error}")
        return 2
    if not runs:
        out(f"{args.tracefile} holds no spans or metrics")
        return 1
    out(render_summary(runs, top=args.top))
    return 0


def cmd_analyze(args, out):
    """Critical-path + fault-lifecycle analysis of a saved trace file.

    Prints one phase breakdown per migration per run (the breakdown
    partitions the root ``migrate`` span, so phases sum to its
    duration), plus post-insertion compute/fault attribution and
    fault-lifecycle percentiles when the trace carries them.  Exit 2 on
    an unreadable or unstamped file, 1 if no run holds a migration.
    """
    from repro.obs import analyze_run, load_chrome, render_analysis

    try:
        runs = load_chrome(args.tracefile)
    except (OSError, ValueError) as error:
        out(f"cannot read trace {args.tracefile!r}: {error}")
        return 2
    code = _require_schema(runs, args.tracefile, out)
    if code:
        return code
    reports = [analyze_run(run) for run in runs]
    for report in reports:
        out(render_analysis(report))
        out("")
    if args.json:
        if _write_json(args.json, {"runs": reports}, out):
            return 1
    if not any(report["migrations"] for report in reports):
        out(f"{args.tracefile} holds no migrate spans to analyze")
        return 1
    return 0


def cmd_health(args, out):
    """Fleet-health dashboard from a sampled trace.

    ``--html`` writes the self-contained dashboard; ``--json`` the
    machine-readable view; with neither, a short text summary prints.
    Exit 2 on an unreadable or unstamped file, 1 when no run carries
    telemetry.
    """
    from repro.obs import load_chrome
    from repro.obs.health import health_json, summarize, write_health

    try:
        runs = load_chrome(args.tracefile)
    except (OSError, ValueError) as error:
        out(f"cannot read trace {args.tracefile!r}: {error}")
        return 2
    code = _require_schema(runs, args.tracefile, out)
    if code:
        return code
    sampled = [
        run for run in runs
        if run.telemetry and run.telemetry.get("times")
    ]
    if not sampled:
        out(f"{args.tracefile} holds no telemetry samples "
            "(record with --sample-period)")
        return 1
    if args.html:
        try:
            write_health(args.html, sampled)
        except OSError as error:
            out(f"cannot write {args.html!r}: {error}")
            return 1
        out(f"health dashboard written to {args.html} "
            f"({len(sampled)} run(s))")
    if args.json:
        payload = {"runs": [health_json(run) for run in sampled]}
        if _write_json(args.json, payload, out):
            return 1
    if not args.html and not args.json:
        for run in sampled:
            summary = summarize(run.telemetry)
            out(f"run {run.pid}: {run.label}")
            out(f"  samples      {summary['ticks']} every "
                f"{summary['period_s']:g}s over {summary['duration_s']:g}s "
                f"({len(summary['hosts'])} hosts)")
            peaks = summary["peaks"]
            if peaks:
                depth = ", ".join(
                    f"{key.split('.')[-1]} {value}"
                    for key, value in sorted(peaks.items())
                )
                out(f"  peak depth   {depth}")
            serving = summary.get("serving")
            if serving is not None:
                out(f"  serving      issued {serving['issued']}, "
                    f"completed {serving['completed']}, "
                    f"dropped {serving['dropped']}, "
                    f"retried {serving['retried']}, "
                    f"redirected {serving['redirected']}")
            for key, value in sorted(summary["final_percentiles"].items()):
                out(f"  {key:<22} {value:g}s (final window)")
            slo = summary.get("slo")
            if slo is not None:
                burned = ", ".join(
                    f"{name}={seconds:g}s"
                    for name, seconds in slo["violation_seconds"].items()
                ) or "none"
                out(f"  SLO          {slo['violations']} violation(s); "
                    f"time in violation: {burned}")
    return 0


def cmd_profile(args, out):
    """Run any repro subcommand under the host-time engine profiler.

    The wrapped command runs unchanged (its simulated outputs are
    byte-identical to an unprofiled run), then the profiler's
    cost-center table prints: wall-clock self-time per event type /
    handler / subsystem, event-queue costs, peak queue depth, and
    allocation counts, with ≥95% of measured engine wall time
    attributed to named centers.  Exits with the wrapped command's
    code (2 on usage errors here).
    """
    from time import perf_counter

    from repro.obs import (
        EngineProfiler,
        profiled,
        render_profile,
        write_speedscope,
    )

    argv = list(args.subcommand)
    if argv and argv[0] == "--":
        argv = argv[1:]
    if not argv:
        out("usage: repro profile [--top N] [--json FILE] "
            "[--flamegraph FILE] COMMAND [ARG ...]")
        return 2
    if argv[0] == "profile":
        out("cannot nest `repro profile` inside itself")
        return 2
    profiler = EngineProfiler()
    started = perf_counter()
    with profiled(profiler):
        code = main(argv, out=out)
    command_wall_s = perf_counter() - started
    report = profiler.report(
        command=argv, command_wall_s=command_wall_s, exit_code=code
    )
    out("")
    out(f"profile of `repro {' '.join(argv)}` "
        f"(command wall {command_wall_s:.3f}s, exit {code})")
    out(render_profile(report, top=args.top))
    if args.flamegraph:
        try:
            write_speedscope(
                args.flamegraph, report,
                name=f"repro {' '.join(argv)}",
            )
        except OSError as error:
            out(f"cannot write {args.flamegraph!r}: {error}")
            return 1
        out(f"flamegraph written to {args.flamegraph} "
            "(open at https://www.speedscope.app)")
    if args.json:
        if _write_json(args.json, report, out):
            return 1
    return code


def cmd_diff(args, out):
    """Compare two exported traces (regression forensics).

    Aligns migrations by trace id / signature / route, then reports
    per-phase sim-time deltas (each summing exactly to its migration's
    root delta), bytes-on-wire and fault-count deltas, and host
    events-per-second deltas.  Exit codes follow POSIX diff: 0 when no
    simulated differences, 1 when the traces differ, 2 when they
    cannot be diffed.
    """
    from repro.obs import TraceDiffError, diff_traces, render_diff

    try:
        report = diff_traces(args.trace_a, args.trace_b)
    except TraceDiffError as error:
        out(f"cannot diff: {error}")
        return 2
    out(render_diff(report))
    if args.json:
        if _write_json(args.json, report, out):
            return 2
    return 0 if report["zero"] else 1


def cmd_workloads(args, out):
    """List the seven representative workloads."""
    out(f"{'name':>10}  {'real':>12}  {'total':>14}  {'RS':>9}  description")
    for spec in WORKLOADS.values():
        out(
            f"{spec.name:>10}  {spec.real_bytes:>12,}  "
            f"{spec.total_bytes:>14,}  {spec.resident_bytes:>9,}  "
            f"{spec.description[:58]}"
        )
    return 0


_COMMANDS = {
    "migrate": cmd_migrate,
    "sweep": cmd_sweep,
    "chain": cmd_chain,
    "precopy": cmd_precopy,
    "balance": cmd_balance,
    "stress": cmd_stress,
    "serve": cmd_serve,
    "faults": cmd_faults,
    "report": cmd_report,
    "export": cmd_export,
    "figures": cmd_figures,
    "inspect": cmd_inspect,
    "analyze": cmd_analyze,
    "health": cmd_health,
    "profile": cmd_profile,
    "diff": cmd_diff,
    "workloads": cmd_workloads,
}


def main(argv=None, out=print):
    """CLI entry point; returns a process exit code.

    ``--profile`` on any trial command wraps just that command's
    execution in the engine profiler and prints the cost-center table
    afterwards; the command's own output and exit code are unchanged
    (``repro profile`` adds export options on top of this).
    """
    args = build_parser().parse_args(argv)
    if getattr(args, "profile", False):
        from repro.obs import EngineProfiler, profiled, render_profile

        profiler = EngineProfiler()
        with profiled(profiler):
            code = _COMMANDS[args.command](args, out)
        out("")
        out(render_profile(profiler.report()))
        return code
    return _COMMANDS[args.command](args, out)


if __name__ == "__main__":
    sys.exit(main())
