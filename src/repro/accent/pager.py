"""The Pager/Scheduler: Accent's fault-resolution server.

Handles the three legal fault kinds of paper §2.3:

* **FillZero** — reserve a frame, zero it, map it.  Never touches disk.
* **Disk** — read the page image from the local paging disk.
* **Imaginary** — send an ``imag.read`` request to the region's backing
  port and wait for the reply, which may carry prefetched pages beyond
  the one demanded (§4: prefetch of 1–15 nearby pages).

The pager CPU is a capacity-1 resource: administrative fault work is
serialised, but the pager never sits on the CPU while waiting for the
network — other faults proceed meanwhile, as in Accent.
"""

from repro.accent.ipc.message import InlineSection, Message, RegionSection
from repro.accent.vm.address_space import Residency
from repro.accent.vm.page import CONTENT_ID_BYTES, Page
from repro.faults.errors import ResidualDependencyError, TransportError
from repro.obs import causal
from repro.obs.span import NULL_SPAN
from repro.sim import Resource

#: Message operation names for the copy-on-reference protocol.
OP_IMAG_READ = "imag.read"
OP_IMAG_READ_REPLY = "imag.read.reply"
OP_IMAG_DEATH = "imag.death"
#: ... the batched/pipelined variant (multi-page request, streamed
#: reply parts — see docs/transfer-plans.md) ...
OP_IMAG_READ_BATCH = "imag.read.batch"
OP_IMAG_READ_REPLY_PART = "imag.read.reply.part"
#: ... and for the residual-dependency flusher (repro.cor.flusher).
OP_IMAG_PUSH = "imag.push"
OP_FLUSH_REGISTER = "flush.register"
#: ... and for the content-addressed store's multi-source fault
#: service (repro.store.server; replies reuse the imag reply ops).
OP_STORE_READ = "store.read"
OP_STORE_READ_BATCH = "store.read.batch"

#: Histogram buckets for peer-source topology distance.
SOURCE_DISTANCE_BUCKETS = (1, 2, 4, 8, 16, 32)

#: Wire bytes of an Imaginary Read Request's payload.
IMAG_REQUEST_PAYLOAD_BYTES = 16
#: Extra payload bytes per additional page named in a batched request.
IMAG_BATCH_PAGE_BYTES = 4


class PagerError(Exception):
    """Fault that cannot be resolved (bad reply, missing backing)."""


class _BatchCollector:
    """Concurrent imaginary faults coalescing into one batched request.

    Keyed by (space, segment): every fault raised against the same
    imaginary segment while the leader pays the pager's administrative
    overhead joins the open collector instead of mailing its own
    request.  ``page_events`` fire per demanded page as reply parts
    install it; ``rtt`` is stamped when the first part lands.
    """

    __slots__ = ("faults", "page_events", "closed", "rtt")

    def __init__(self):
        self.faults = []  # (fault_id, page_index, fault_span)
        self.page_events = {}  # page_index -> completion Event
        self.closed = False
        self.rtt = None

    def add(self, engine, fault_id, index, span):
        """Register one fault; returns the event its faulter waits on."""
        self.faults.append((fault_id, index, span))
        event = engine.event()
        self.page_events[index] = event
        return event


class Pager:
    """Per-host Pager/Scheduler."""

    def __init__(self, host):
        self.host = host
        self.engine = host.engine
        self.calibration = host.calibration
        self.cpu = Resource(self.engine, capacity=1, name=f"{host.name}-pager")
        #: Reply port for imaginary read replies.
        self.reply_port = host.registry.create(host, name=f"{host.name}-pager-reply")
        #: fault_id -> completion Event (fires with the reply message).
        self._pending_replies = {}
        #: (space_id, page_index) -> in-flight fault Event, for dedupe.
        self._inflight = {}
        #: Pages targeted per batched Imaginary Read Request; 1 keeps
        #: the per-page path (bit-identical to the original protocol).
        self.batch = 1
        #: Reply parts a backer may stream per batched request.
        self.pipeline = 1
        #: (space_id, segment_id) -> open :class:`_BatchCollector`.
        self._collectors = {}
        #: request_id -> reply-part state for in-flight batched requests.
        self._pending_batches = {}
        self._dispatcher = self.engine.process(
            self._reply_loop(), name=f"{host.name}-pager-dispatch"
        )

    def __repr__(self):
        return f"<Pager {self.host.name} inflight={len(self._inflight)}>"

    # -- fault entry points (generators; kernel yields from them) -------------
    def fill_zero_fault(self, space, index):
        """FillZero: materialise a zero page (paper §2.3, RealZeroMem)."""
        self.host.metrics.record_fault("fill-zero")
        with self.cpu.held() as req:
            yield req
            yield self.engine.timeout(self.calibration.fill_zero_s)
        yield from self._install_resident(space, index, Page.zero())

    def disk_fault(self, space, index):
        """Bring a real page in from the local paging disk."""
        self.host.metrics.record_fault("disk")
        with self.cpu.held() as req:
            yield req
            yield self.engine.timeout(self.calibration.pager_overhead_s)
        page = yield from self.host.disk.read(space.space_id, index)
        entry = space.entry(index)
        entry.page = page
        yield from self._make_resident(space, index)
        with self.cpu.held() as req:
            yield req
            yield self.engine.timeout(self.calibration.map_in_s)

    def imaginary_fault(self, space, index, mapping):
        """Fetch an owed page from its backing port (paper §2.2)."""
        key = (space.space_id, index)
        pending = self._inflight.get(key)
        if pending is not None:
            # Another faulter already asked for this page; share the wait.
            yield pending
            return
        done = self.engine.event()
        self._inflight[key] = done
        try:
            if self.batch > 1 or self.pipeline > 1:
                yield from self._imaginary_fault_batched(space, index, mapping)
            else:
                yield from self._imaginary_fault_inner(space, index, mapping)
            done.succeed()
        except BaseException as error:
            # Defused: waiters sharing the fault still see the error
            # raised at their yield point, but a lone faulter's failure
            # must not detonate a second time when the engine drains.
            done.fail(error)
            done.defuse()
            raise
        finally:
            self._inflight.pop(key, None)

    def _imaginary_fault_inner(self, space, index, mapping):
        fault_started = self.engine.now
        self.host.metrics.record_fault("imaginary")
        calibration = self.calibration
        fault_id = self.engine.serial("fault")
        obs = self.host.metrics.obs
        # The fault nests under whatever phase the process is in (an
        # exec root after insertion, a transfer phase if mid-migration)
        # but *carries the trace id of the migration that owed the
        # page* — the cross-trace stitch point that lets one trace DAG
        # span raiser, backer, and the shipping in between.
        fault_span = obs.tracer.span(
            "fault",
            parent=obs.current_phase,
            track=f"pager/{self.host.name}",
            trace_id=mapping.handle.trace_id,
            fault_id=fault_id,
            page=index,
            segment=mapping.handle.segment_id,
        )
        lifecycle = obs.lifecycle
        if lifecycle is not None:
            lifecycle.raised(
                fault_id,
                trace_id=fault_span.trace_id,
                page=index,
                segment_id=mapping.handle.segment_id,
                host=self.host.name,
                now=fault_started,
            )
        try:
            with self.cpu.held() as req:
                yield req
                yield self.engine.timeout(calibration.pager_overhead_s)

            # Every fetch resolves through the unified PageSource API;
            # store-off it degenerates to the single origin source and
            # the request below is byte-identical to the pre-store
            # protocol.
            resolution = self.host.resolver.resolve(mapping.handle, (index,))
            local_page = resolution.local.get(index)
            if local_page is not None:
                # Local content-store hit: no wire round trip at all.
                with self.cpu.held() as req:
                    yield req
                    yield self.engine.timeout(calibration.store_lookup_s)
                yield from self._install_resident(space, index, local_page)
                with self.cpu.held() as req:
                    yield req
                    yield self.engine.timeout(calibration.map_in_s)
                rtt = 0.0
                self._note_store_service("local", None, fault_span)
                if lifecycle is not None:
                    lifecycle.request_done(fault_id, now=self.engine.now)
                    lifecycle.reply_done(fault_id, now=self.engine.now)
            else:
                reply = None
                served_by = None
                requested = False
                sources = resolution.sources
                for position, source in enumerate(sources):
                    last = position == len(sources) - 1
                    if source.kind == "origin":
                        request = Message(
                            dest=source.port,
                            op=OP_IMAG_READ,
                            sections=[
                                InlineSection(
                                    bytes(IMAG_REQUEST_PAYLOAD_BYTES)
                                )
                            ],
                            reply_port=self.reply_port,
                            meta={
                                "fault_id": fault_id,
                                "page_index": index,
                                "segment_id": mapping.handle.segment_id,
                            },
                        )
                    else:
                        request = Message(
                            dest=source.port,
                            op=OP_STORE_READ,
                            sections=[
                                InlineSection(
                                    bytes(
                                        IMAG_REQUEST_PAYLOAD_BYTES
                                        + CONTENT_ID_BYTES
                                    )
                                )
                            ],
                            reply_port=self.reply_port,
                            meta={
                                "fault_id": fault_id,
                                "page_index": index,
                                "cid": resolution.content_ids[index],
                            },
                        )
                    causal.attach(request, fault_span)
                    reply_event = self.engine.event()
                    self._pending_replies[fault_id] = reply_event
                    request_sent = self.engine.now
                    try:
                        yield from self.host.kernel.send(request)
                    except TransportError as error:
                        self._pending_replies.pop(fault_id, None)
                        if not last:
                            continue  # fall through to the next source
                        if lifecycle is not None:
                            lifecycle.failed(
                                fault_id, str(error), now=self.engine.now
                            )
                        raise self._residual_dependency(
                            space, index, error
                        ) from error
                    if not requested and lifecycle is not None:
                        lifecycle.request_done(fault_id, now=self.engine.now)
                    requested = True
                    if self.host.fault_injector is not None:
                        # The request arrived, but the serving host may
                        # die before the reply escapes it — arm a
                        # deadline so a fault in a faulty world surfaces
                        # as a fallback (or, at the origin, a kill),
                        # never a hang.
                        deadline = self.engine.timeout(
                            calibration.imag_reply_deadline_s
                        )
                        yield self.engine.any_of([reply_event, deadline])
                        if not reply_event.processed:
                            self._pending_replies.pop(fault_id, None)
                            if not last:
                                continue
                            error = TransportError(
                                f"no imaginary read reply within "
                                f"{calibration.imag_reply_deadline_s}s"
                            )
                            if lifecycle is not None:
                                lifecycle.failed(
                                    fault_id, str(error), now=self.engine.now
                                )
                            raise self._residual_dependency(
                                space, index, error
                            )
                        candidate = reply_event.value
                    else:
                        candidate = yield reply_event
                    if candidate.meta.get("miss"):
                        # The peer no longer holds the contents
                        # (volatile cache); fall through.  The origin
                        # backer never replies with a miss.
                        if last:
                            raise PagerError(
                                f"origin reply for page {index} "
                                "reported a miss"
                            )
                        continue
                    reply = candidate
                    served_by = source
                    break
                rtt = self.engine.now - request_sent
                if lifecycle is not None:
                    lifecycle.reply_done(fault_id, now=self.engine.now)

                region = reply.first_section(RegionSection)
                if region is None or index not in region.pages:
                    raise PagerError(
                        f"imaginary read reply for page {index} lacks the page"
                    )
                # Install the demanded page and any prefetched companions
                # that are still owed (they may have raced with other
                # faults).
                for page_index in sorted(region.pages):
                    if space.entry(page_index) is not None:
                        continue
                    page = region.pages[page_index]
                    yield from self._install_resident(space, page_index, page)
                    if page_index != index:
                        # Mark prefetched arrivals so later touches count
                        # hits.
                        space.page_table[page_index].prefetched = True
                with self.cpu.held() as req:
                    yield req
                    yield self.engine.timeout(calibration.map_in_s)
                if resolution.store_enabled:
                    self._note_store_service(
                        served_by.kind, served_by, fault_span
                    )
            self.host.metrics.record_imag_latency(
                self.engine.now - fault_started, rtt
            )
            if lifecycle is not None:
                lifecycle.resumed(fault_id, now=self.engine.now)
        finally:
            fault_span.finish()

    def _note_store_service(self, kind, source, fault_span):
        """Store-gated bookkeeping for one cache-involved fault.

        Only ever called when the content store is enabled, so store-off
        runs register none of these metric families or span args.
        """
        registry = self.host.metrics.obs.registry
        registry.counter(
            "store_fault_served_total", labels=("host", "source")
        ).inc(1, host=self.host.name, source=kind)
        if fault_span is not NULL_SPAN:
            fault_span.attrs["source"] = kind
        if source is not None and source.host_name:
            if fault_span is not NULL_SPAN:
                fault_span.attrs["source_host"] = source.host_name
            if source.distance is not None:
                registry.histogram(
                    "store_source_distance",
                    buckets=SOURCE_DISTANCE_BUCKETS,
                ).observe(source.distance)

    # -- batched fault path (batch/pipeline > 1; docs/transfer-plans.md) --------
    def _imaginary_fault_batched(self, space, index, mapping):
        """Resolve an imaginary fault through the batched request path.

        The first fault against a (space, segment) pair becomes the
        *leader*: it pays the pager's administrative overhead once,
        holds a deferred coalescing window open so concurrent faults
        can join, then launches one multi-page request.  Every member
        (leader included) just waits for its own page to be installed
        by a reply part.
        """
        fault_started = self.engine.now
        self.host.metrics.record_fault("imaginary")
        fault_id = self.engine.serial("fault")
        obs = self.host.metrics.obs
        fault_span = obs.tracer.span(
            "fault",
            parent=obs.current_phase,
            track=f"pager/{self.host.name}",
            trace_id=mapping.handle.trace_id,
            fault_id=fault_id,
            page=index,
            segment=mapping.handle.segment_id,
        )
        lifecycle = obs.lifecycle
        if lifecycle is not None:
            lifecycle.raised(
                fault_id,
                trace_id=fault_span.trace_id,
                page=index,
                segment_id=mapping.handle.segment_id,
                host=self.host.name,
                now=fault_started,
            )
        try:
            key = (space.space_id, mapping.handle.segment_id)
            collector = self._collectors.get(key)
            if collector is None or collector.closed:
                collector = _BatchCollector()
                self._collectors[key] = collector
                page_done = collector.add(
                    self.engine, fault_id, index, fault_span
                )
                # Leader: one administrative charge for the whole batch.
                with self.cpu.held() as req:
                    yield req
                    yield self.engine.timeout(
                        self.calibration.pager_overhead_s
                    )
                # Coalescing window: every fault raised up to this
                # instant joins before the deferred wakeup closes it.
                yield self.engine.defer()
                collector.closed = True
                if self._collectors.get(key) is collector:
                    del self._collectors[key]
                self.engine.process(
                    self._run_batch(space, mapping, collector),
                    name=f"{self.host.name}-imag-batch",
                )
            else:
                page_done = collector.add(
                    self.engine, fault_id, index, fault_span
                )
            yield page_done
            self.host.metrics.record_imag_latency(
                self.engine.now - fault_started, collector.rtt
            )
            if lifecycle is not None:
                lifecycle.resumed(fault_id, now=self.engine.now)
        finally:
            fault_span.finish()

    def _run_batch(self, space, mapping, collector):
        """Generator: mail one batched request; install its reply parts.

        Runs as its own engine process so member faulters only block on
        their page events.  Reply parts stream in (up to the pipeline
        depth); each is installed and its demanded faulters woken as it
        lands, so the first pages resume their processes while later
        parts are still on the wire.
        """
        engine = self.engine
        calibration = self.calibration
        obs = self.host.metrics.obs
        lifecycle = obs.lifecycle
        request_id = engine.serial("batch")
        demanded = sorted(collector.page_events)
        # The coalescing window is sized from the *original* demand set
        # — store-off this makes the request byte-identical to the
        # pre-store protocol, and store-on a local split must not
        # shrink the backer's prefetch reach.
        window = max(self.batch, len(demanded))
        pending_wakeups = dict(collector.page_events)
        resolution = self.host.resolver.resolve(mapping.handle, demanded)
        if resolution.local:
            # Local content-store hits: install them in one lookup
            # charge and wake their faulters without any wire traffic.
            with self.cpu.held() as req:
                yield req
                yield engine.timeout(calibration.store_lookup_s)
            for page_index in sorted(resolution.local):
                if space.entry(page_index) is None:
                    yield from self._install_resident(
                        space, page_index, resolution.local[page_index]
                    )
            with self.cpu.held() as req:
                yield req
                yield engine.timeout(calibration.map_in_s)
            for page_index in sorted(resolution.local):
                waiter = pending_wakeups.pop(page_index, None)
                if waiter is not None:
                    if lifecycle is not None:
                        fid = next(
                            f for f, i, _ in collector.faults
                            if i == page_index
                        )
                        lifecycle.request_done(fid, now=engine.now)
                        lifecycle.reply_done(fid, now=engine.now)
                    waiter.succeed()
            for _ in resolution.local:
                self._note_store_service(
                    "local", None, collector.faults[0][2]
                )
            if not pending_wakeups:
                if collector.rtt is None:
                    collector.rtt = 0.0
                return

        requested = False
        sources = resolution.sources
        for position, source in enumerate(sources):
            last = position == len(sources) - 1
            remaining = sorted(pending_wakeups)
            remaining_set = set(remaining)
            remaining_faults = [
                (fid, idx)
                for fid, idx, _ in collector.faults
                if idx in remaining_set
            ]
            if source.kind == "origin":
                payload = (
                    IMAG_REQUEST_PAYLOAD_BYTES
                    + IMAG_BATCH_PAGE_BYTES * (len(remaining) - 1)
                )
                request = Message(
                    dest=source.port,
                    op=OP_IMAG_READ_BATCH,
                    sections=[InlineSection(bytes(payload))],
                    reply_port=self.reply_port,
                    meta={
                        "request_id": request_id,
                        "faults": remaining_faults,
                        "segment_id": mapping.handle.segment_id,
                        "window": window,
                        "pipeline": self.pipeline,
                    },
                )
            else:
                payload = IMAG_REQUEST_PAYLOAD_BYTES + (
                    IMAG_BATCH_PAGE_BYTES + CONTENT_ID_BYTES
                ) * len(remaining)
                request = Message(
                    dest=source.port,
                    op=OP_STORE_READ_BATCH,
                    sections=[InlineSection(bytes(payload))],
                    reply_port=self.reply_port,
                    meta={
                        "request_id": request_id,
                        "faults": remaining_faults,
                        "cids": {
                            idx: resolution.content_ids[idx]
                            for idx in remaining
                        },
                        "pipeline": self.pipeline,
                    },
                )
            causal.attach(request, collector.faults[0][2])
            state = {"queue": [], "event": engine.event()}
            self._pending_batches[request_id] = state
            request_sent = engine.now
            try:
                yield from self.host.kernel.send(request)
            except TransportError as error:
                self._pending_batches.pop(request_id, None)
                if not last:
                    continue  # fall through to the next source
                self._fail_batch(space, collector, error)
                return
            if not requested and lifecycle is not None:
                for fid, _idx in remaining_faults:
                    lifecycle.request_done(fid, now=engine.now)
            requested = True

            received = 0
            parts_total = None
            missed = False
            timed_out = False
            while parts_total is None or received < parts_total:
                if not state["queue"]:
                    if self.host.fault_injector is not None:
                        deadline = engine.timeout(
                            calibration.imag_reply_deadline_s
                        )
                        yield engine.any_of([state["event"], deadline])
                        if not state["event"].processed:
                            self._pending_batches.pop(request_id, None)
                            timed_out = True
                            break
                    else:
                        yield state["event"]
                    state["event"] = engine.event()
                reply = state["queue"].pop(0)
                received += 1
                parts_total = reply.meta["parts"]
                if reply.meta.get("miss"):
                    # The peer no longer holds some requested contents;
                    # retry the whole remainder at the next source.
                    self._pending_batches.pop(request_id, None)
                    missed = True
                    break
                if collector.rtt is None:
                    collector.rtt = engine.now - request_sent
                region = reply.first_section(RegionSection)
                for page_index in sorted(region.pages):
                    if space.entry(page_index) is not None:
                        continue
                    page = region.pages[page_index]
                    yield from self._install_resident(space, page_index, page)
                    if page_index not in pending_wakeups:
                        space.page_table[page_index].prefetched = True
                with self.cpu.held() as req:
                    yield req
                    yield engine.timeout(calibration.map_in_s)
                for page_index in sorted(region.pages):
                    waiter = pending_wakeups.pop(page_index, None)
                    if waiter is not None:
                        if lifecycle is not None:
                            fid = next(
                                f for f, i, _ in collector.faults
                                if i == page_index
                            )
                            lifecycle.reply_done(fid, now=engine.now)
                        waiter.succeed()
                if resolution.store_enabled:
                    for _ in region.pages:
                        self._note_store_service(
                            source.kind, source, collector.faults[0][2]
                        )
            if timed_out or missed:
                if not last:
                    continue
                if missed:
                    raise PagerError(
                        "origin reply for batched imaginary read "
                        "reported a miss"
                    )
                error = TransportError(
                    f"no batched imaginary read reply within "
                    f"{calibration.imag_reply_deadline_s}s"
                )
                self._fail_batch(space, collector, error)
                return
            self._pending_batches.pop(request_id, None)
            break
        if pending_wakeups:
            missing = sorted(pending_wakeups)
            raise PagerError(
                f"batched imaginary reply omitted demanded pages {missing}"
            )

    def _fail_batch(self, space, collector, error):
        """Fail every member fault of a dead batch.

        Stamps the lifecycle failures, performs the residual-dependency
        kill once, and fails each member's page event so waiting
        faulters raise the typed error at their yield point (defused —
        a member killed along with its process leaves no waiter).
        """
        lifecycle = self.host.metrics.obs.lifecycle
        if lifecycle is not None:
            for fid, _idx, _span in collector.faults:
                lifecycle.failed(fid, str(error), now=self.engine.now)
        typed = self._residual_dependency(
            space, collector.faults[0][1], error
        )
        for event in collector.page_events.values():
            if not event.triggered:
                event.fail(typed)
                event.defuse()

    def _residual_dependency(self, space, index, cause):
        """An owed page's backing host is unreachable: kill the process.

        This is the paper's central copy-on-reference caveat made
        concrete — with the source gone, the page can never be
        rematerialised, so the process is destroyed rather than left
        wedged.  Returns the typed error for the faulter to raise.
        """
        process = None
        for candidate in self.host.kernel.processes.values():
            if candidate.space is space:
                process = candidate
                break
        name = process.name if process is not None else space.name
        if process is not None:
            self.host.kernel.kill(process)
        self.host.metrics.obs.registry.counter(
            "residual_kills_total", labels=("host",)
        ).inc(1, host=self.host.name)
        return ResidualDependencyError(
            f"process {name!r} lost page {index}: {cause}"
        )

    # -- reply dispatch ---------------------------------------------------------
    def _reply_loop(self):
        """Routes imaginary read replies to their waiting faults."""
        while True:
            message = yield self.reply_port.receive()
            request_id = message.meta.get("request_id")
            if request_id is not None:
                state = self._pending_batches.get(request_id)
                if state is None:
                    if self.host.fault_injector is not None:
                        self.host.metrics.obs.registry.counter(
                            "stale_replies_total", labels=("host",)
                        ).inc(1, host=self.host.name)
                        continue
                    raise PagerError(
                        f"unmatched batched imaginary reply {request_id!r}"
                    )
                state["queue"].append(message)
                if not state["event"].triggered:
                    state["event"].succeed()
                continue
            fault_id = message.meta.get("fault_id")
            waiter = self._pending_replies.pop(fault_id, None)
            if waiter is None:
                if self.host.fault_injector is not None:
                    # A reply outlasting its fault's deadline: stale,
                    # not a protocol error, in a faulty world.
                    self.host.metrics.obs.registry.counter(
                        "stale_replies_total", labels=("host",)
                    ).inc(1, host=self.host.name)
                    continue
                raise PagerError(f"unmatched imaginary reply {fault_id!r}")
            waiter.succeed(message)

    # -- flusher support --------------------------------------------------------
    def install_pushed(self, space, index, page):
        """Generator: install one flusher-pushed page (no fault charged).

        The push raced any demand fault for the same page; callers
        check residency first, and installation is a map-in plus the
        usual frame claim.
        """
        with self.cpu.held() as req:
            yield req
            yield self.engine.timeout(self.calibration.map_in_s)
        yield from self._install_resident(space, index, page)

    # -- frame management ---------------------------------------------------------
    def _install_resident(self, space, index, page):
        """Install a brand-new page as resident, evicting if needed."""
        yield from self._claim_frame(space, index)
        space.install_page(index, page, Residency.RESIDENT)

    def _make_resident(self, space, index):
        """Flip an existing on-disk page to resident."""
        yield from self._claim_frame(space, index)
        space.set_residency(index, Residency.RESIDENT)

    def _claim_frame(self, space, index):
        victim = self.host.physical.allocate((space.space_id, index))
        if victim is not None:
            victim_space_id, victim_index = victim
            victim_space = self.host.space_by_id(victim_space_id)
            entry = victim_space.entry(victim_index)
            yield from self.host.disk.write(
                victim_space_id, victim_index, entry.page
            )
            victim_space.set_residency(victim_index, Residency.ON_DISK)
