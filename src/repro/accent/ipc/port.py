"""Ports: Accent's protected communication capability.

A port is a kernel-buffered message queue.  Exactly one party holds the
*Receive* right (and may accept messages); many parties may hold *Send*
rights.  Accent ports are location transparent: the same port name works
wherever the holder runs, with the NetMsgServers forwarding traffic
between machines.  We reproduce that transparency with a global registry
plus a ``home_host`` attribute per port — messages sent from another host
are routed through both NetMsgServers, paying the network costs, exactly
as Accent's proxy-port chains did.
"""

import enum
from itertools import count

from repro.sim import Store

_port_ids = count(1)


class RightKind(enum.Enum):
    """The three Accent port rights."""

    RECEIVE = "receive"
    SEND = "send"
    OWNERSHIP = "ownership"


RECEIVE = RightKind.RECEIVE
SEND = RightKind.SEND
OWNERSHIP = RightKind.OWNERSHIP


class PortRight:
    """A transferable capability naming a port."""

    __slots__ = ("port", "kind")

    def __init__(self, port, kind):
        if not isinstance(kind, RightKind):
            raise TypeError(f"{kind!r} is not a RightKind")
        self.port = port
        self.kind = kind

    def __repr__(self):
        return f"<PortRight {self.kind.value} {self.port!r}>"

    #: Approximate wire size of one encoded right in a message.
    WIRE_BYTES = 8


class Port:
    """One port: identity, home host, and its kernel message buffer."""

    #: Default kernel backlog (queued messages) per port.
    DEFAULT_BACKLOG = 64

    def __init__(self, engine, home_host, name=None, backlog=None):
        self.port_id = next(_port_ids)
        self.name = name or f"port-{self.port_id}"
        #: The host where the Receive-right holder currently runs;
        #: updated when the right migrates.
        self.home_host = home_host
        self.queue = Store(
            engine, capacity=backlog or self.DEFAULT_BACKLOG, name=self.name
        )
        #: Whether the receive right still exists (ports die with it).
        self.alive = True

    def __repr__(self):
        host = getattr(self.home_host, "name", self.home_host)
        return f"<Port {self.name}#{self.port_id}@{host}>"

    def __hash__(self):
        return self.port_id

    def __eq__(self, other):
        return self is other

    def enqueue(self, message):
        """Buffer a message (returns the Store put event)."""
        if not self.alive:
            raise DeadPortError(f"send to dead {self!r}")
        return self.queue.put(message)

    def receive(self):
        """Event yielding the next queued message."""
        if not self.alive:
            raise DeadPortError(f"receive on dead {self!r}")
        return self.queue.get()

    def destroy(self):
        """Kill the port (receive right deallocated)."""
        self.alive = False

    def move_home(self, host):
        """Relocate the receive right to another host."""
        if host is None:
            raise ValueError("port must have a home host")
        self.home_host = host


class DeadPortError(Exception):
    """Raised on operations against a destroyed port."""


class PortRegistry:
    """The testbed-wide port namespace.

    Accent names are location independent; the registry reproduces that
    property.  It exists per :class:`~repro.testbed.Testbed`, not per
    host — the *routing* of messages between hosts still goes through
    the NetMsgServers and pays network costs.
    """

    def __init__(self, engine):
        self.engine = engine
        self._ports = {}

    def create(self, home_host, name=None, backlog=None):
        """Allocate a new port homed at ``home_host``."""
        port = Port(self.engine, home_host, name=name, backlog=backlog)
        self._ports[port.port_id] = port
        return port

    def lookup(self, port_id):
        """The port with ``port_id`` (KeyError if unknown)."""
        return self._ports[port_id]

    def destroy(self, port):
        """Remove and kill a port."""
        port.destroy()
        self._ports.pop(port.port_id, None)

    def __len__(self):
        return len(self._ports)

    def __contains__(self, port):
        return getattr(port, "port_id", None) in self._ports
