"""Accent inter-process communication: ports, rights and messages."""

from repro.accent.ipc.message import (
    AMapSection,
    InlineSection,
    IOUSection,
    Message,
    RegionSection,
    RightsSection,
    Section,
)
from repro.accent.ipc.port import (
    OWNERSHIP,
    Port,
    PortRegistry,
    PortRight,
    RECEIVE,
    RightKind,
    SEND,
)
from repro.accent.ipc.stats import TransferStats

__all__ = [
    "AMapSection",
    "InlineSection",
    "IOUSection",
    "Message",
    "OWNERSHIP",
    "Port",
    "PortRegistry",
    "PortRight",
    "RECEIVE",
    "RegionSection",
    "RightKind",
    "RightsSection",
    "SEND",
    "Section",
    "TransferStats",
]
