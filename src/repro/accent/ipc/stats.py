"""Accounting for the IPC/VM integration (Fitzgerald's metric).

Accent passes large message data by remapping pages copy-on-write rather
than copying bytes; Fitzgerald measured that up to 99.98% of data passed
between processes never needed a physical copy (paper §2.1).  The kernel
records both quantities here so tests can check the same property.
"""


class TransferStats:
    """Bytes moved by mapping vs. physically copied, plus COW breaks."""

    def __init__(self):
        #: Bytes delivered by remapping pages (no copy performed).
        self.mapped_bytes = 0
        #: Bytes physically copied at send time (below threshold).
        self.copied_bytes = 0
        #: Deferred copies actually carried out when a sharer wrote.
        self.cow_breaks = 0
        #: Bytes those deferred copies moved (one page each).
        self.cow_break_bytes = 0
        #: Messages sent through the kernel.
        self.messages = 0

    def __repr__(self):
        return (
            f"<TransferStats mapped={self.mapped_bytes} "
            f"copied={self.copied_bytes} cow_breaks={self.cow_breaks}>"
        )

    @property
    def logical_bytes(self):
        """Total bytes conceptually transferred by value."""
        return self.mapped_bytes + self.copied_bytes

    @property
    def physically_copied_bytes(self):
        """Bytes that really moved: eager copies plus deferred ones."""
        return self.copied_bytes + self.cow_break_bytes

    @property
    def avoided_copy_fraction(self):
        """Fraction of logical bytes never physically copied — the
        metric of Fitzgerald's study (paper §2.1: up to 99.98%).

        With no logical transfer at all, nothing *needed* copying, so
        the avoided fraction is vacuously 1.0.
        """
        total = self.logical_bytes
        copied = self.physically_copied_bytes
        assert copied <= total, (
            f"physically copied {copied} bytes exceeds the {total} logical "
            f"bytes transferred — COW-break accounting charged a copy this "
            f"kernel never sent (mapped={self.mapped_bytes}, "
            f"copied={self.copied_bytes}, cow_break={self.cow_break_bytes})"
        )
        if total == 0:
            return 1.0
        return 1.0 - copied / total

    def merge(self, other):
        """Accumulate another stats object into this one."""
        self.mapped_bytes += other.mapped_bytes
        self.copied_bytes += other.copied_bytes
        self.cow_breaks += other.cow_breaks
        self.cow_break_bytes += other.cow_break_bytes
        self.messages += other.messages
