"""IPC messages and their typed sections.

A single Accent message can carry everything a process can address
(paper §2.1): inline data, port rights, whole memory regions, an AMap,
and IOUs for imaginary memory.  Each section knows its wire size so the
NetMsgServer can fragment messages and the metrics layer can count bytes
on the link.
"""

from itertools import count

from repro.accent.constants import PAGE_SIZE
from repro.accent.vm.page import CONTENT_ID_BYTES

_message_ids = count(1)

#: Fixed header bytes per message on the wire (ids, ports, flags).
HEADER_BYTES = 32


class Section:
    """Base class for message sections."""

    #: Per-section descriptor overhead on the wire.
    DESCRIPTOR_BYTES = 8

    @property
    def wire_bytes(self):
        """Bytes this section occupies when physically transmitted."""
        raise NotImplementedError

    def __repr__(self):
        return f"<{type(self).__name__} wire={self.wire_bytes}>"


class InlineSection(Section):
    """Small by-value data physically present in the message."""

    def __init__(self, payload, label=None):
        self.payload = bytes(payload)
        self.label = label

    @property
    def wire_bytes(self):
        return self.DESCRIPTOR_BYTES + len(self.payload)


class RightsSection(Section):
    """Port rights passed through the message (transparently renamed)."""

    def __init__(self, rights):
        self.rights = list(rights)

    @property
    def wire_bytes(self):
        from repro.accent.ipc.port import PortRight

        return self.DESCRIPTOR_BYTES + len(self.rights) * PortRight.WIRE_BYTES


class AMapSection(Section):
    """An Accessibility Map describing an address space (Core message)."""

    def __init__(self, amap):
        self.amap = amap

    @property
    def wire_bytes(self):
        return self.DESCRIPTOR_BYTES + self.amap.wire_bytes


class RegionSection(Section):
    """Real memory: a set of pages destined for given page indices.

    ``pages`` maps *target page index* (in the receiver's reconstructed
    layout) to :class:`~repro.accent.vm.page.Page` objects.  Inside one
    machine the pages are shared copy-on-write; across machines their
    bytes go on the wire.

    ``force_copy`` reproduces the NoIOUs bit at section granularity: a
    NetMsgServer must physically transmit this section rather than cache
    it and substitute an IOU.  (The paper carries the bit in the message
    header; per-section granularity is what the RS strategy needs when it
    ships resident pages physically while passing IOUs for the rest, and
    degenerates to the paper's semantics when uniform.)
    """

    #: Per-page descriptor overhead (target index).
    PAGE_DESCRIPTOR_BYTES = 4

    #: Per-deduped-page wire overhead: target index + content id.
    CONTENT_REF_BYTES = 4 + CONTENT_ID_BYTES

    def __init__(self, pages, force_copy=False, label=None,
                 transfer_window=None):
        self.pages = dict(pages)
        self.force_copy = force_copy
        self.label = label
        #: Per-region prefetch window requested by a transfer plan
        #: (None = no preference).  When the section is IOU-substituted
        #: the window travels onto the cached segment, widening batched
        #: fault replies against it.
        self.transfer_window = transfer_window
        #: Dedup substitutions: target page index -> content id, filled
        #: by a dedup-aware NetMsgServer when the destination already
        #: holds the contents.  Such pages ride the wire as a reference
        #: and are rematerialised from the destination's content store
        #: at reassembly, so downstream consumers still see ``pages``.
        self.content_refs = {}

    def __repr__(self):
        return (
            f"<RegionSection pages={len(self.pages)} "
            f"force_copy={self.force_copy}>"
        )

    @property
    def byte_size(self):
        return (len(self.pages) + len(self.content_refs)) * PAGE_SIZE

    @property
    def wire_bytes(self):
        return (
            self.DESCRIPTOR_BYTES
            + len(self.pages) * (PAGE_SIZE + self.PAGE_DESCRIPTOR_BYTES)
            + len(self.content_refs) * self.CONTENT_REF_BYTES
        )

    def share_pages(self):
        """Add COW references to every page (local map-in path)."""
        for page in self.pages.values():
            page.share()


class IOUSection(Section):
    """A promise for memory: deliver these pages on demand.

    ``handle`` (an :class:`~repro.cor.imaginary.ImaginaryHandle`) names
    the backing port that fields Imaginary Read Requests plus the
    segment id it serves.  ``page_indices`` are target page indices in
    the receiver's layout; the backer resolves them via its own stash.
    """

    #: Wire size of one encoded owed run.
    RUN_BYTES = 12

    def __init__(self, handle, page_indices, label=None):
        self.handle = handle
        self.page_indices = sorted(page_indices)
        self.label = label

    @property
    def backing_port(self):
        return self.handle.backing_port

    def __repr__(self):
        return (
            f"<IOUSection pages={len(self.page_indices)} "
            f"via={self.handle!r}>"
        )

    @property
    def byte_size(self):
        return len(self.page_indices) * PAGE_SIZE

    def runs(self):
        """Contiguous owed runs as (first, last) inclusive page indices."""
        runs = []
        for index in self.page_indices:
            if runs and index == runs[-1][1] + 1:
                runs[-1][1] = index
            else:
                runs.append([index, index])
        return [(first, last) for first, last in runs]

    @property
    def wire_bytes(self):
        base = self.DESCRIPTOR_BYTES + len(self.runs()) * self.RUN_BYTES
        # When the backing segment carries content ids (store-enabled
        # worlds only), the IOU ships one id per owed page so any
        # holder of the contents can service the eventual fault.
        if getattr(self.handle, "content_ids", None):
            base += len(self.page_indices) * CONTENT_ID_BYTES
        return base


class Message:
    """One IPC message: header plus typed sections."""

    def __init__(
        self, dest, op, sections=(), reply_port=None, no_ious=False, meta=None
    ):
        self.message_id = next(_message_ids)
        self.dest = dest
        self.op = op
        self.reply_port = reply_port
        #: Paper §2.4: when set, NetMsgServers must not substitute IOUs
        #: for the real data in this message.
        self.no_ious = no_ious
        self.sections = list(sections)
        #: Small structured fields (ids, page numbers).  Conceptually
        #: part of an inline section; callers that want its bytes counted
        #: on the wire include a matching InlineSection.
        self.meta = dict(meta) if meta else {}
        #: Filled by the routing layer for debugging/metrics.
        self.source_host = None
        #: Causal trace context (:class:`repro.obs.causal.TraceContext`)
        #: stamped by instrumented senders; None on untraced messages.
        self.trace_ctx = None

    def __repr__(self):
        return (
            f"<Message #{self.message_id} {self.op} -> {self.dest!r} "
            f"sections={len(self.sections)}>"
        )

    @property
    def wire_bytes(self):
        """Total bytes if the message is physically transmitted as-is."""
        return HEADER_BYTES + sum(s.wire_bytes for s in self.sections)

    def sections_of(self, section_type):
        """All sections of one type, in order."""
        return [s for s in self.sections if isinstance(s, section_type)]

    def first_section(self, section_type):
        """The first section of a type, or ``None``."""
        for section in self.sections:
            if isinstance(section, section_type):
                return section
        return None
