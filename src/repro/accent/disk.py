"""The local paging disk.

One disk arm per host (a :class:`~repro.sim.Resource` of capacity 1) plus
a page store.  Page-outs for imaginary data go to the local disk at the
site that touched the page (paper §2.2), so both hosts have one.
"""

from repro.sim import Resource


class PagingDisk:
    """Per-host backing store for paged-out memory."""

    def __init__(self, engine, calibration, name="disk"):
        self.engine = engine
        self.calibration = calibration
        self.name = name
        self.arm = Resource(engine, capacity=1, name=f"{name}-arm")
        #: (space_id, page_index) -> Page
        self._store = {}
        self.reads = 0
        self.writes = 0

    def __repr__(self):
        return f"<PagingDisk {self.name} pages={len(self._store)}>"

    def store_instant(self, space_id, page_index, page):
        """Place a page on disk without simulated time (builder path).

        Pre-migration state construction uses this to position each
        workload's non-resident pages; the disk time for having written
        them happened before the measurement interval begins.
        """
        self._store[(space_id, page_index)] = page

    def holds(self, space_id, page_index):
        """Whether a page image is on this disk."""
        return (space_id, page_index) in self._store

    def read(self, space_id, page_index):
        """Generator: read a page, charging disk service time."""
        with self.arm.held() as req:
            yield req
            yield self.engine.timeout(self.calibration.disk_service_s)
        self.reads += 1
        try:
            return self._store[(space_id, page_index)]
        except KeyError:
            raise DiskError(
                f"no page image for space {space_id} page {page_index}"
            ) from None

    def write(self, space_id, page_index, page):
        """Generator: write a page out, charging disk service time."""
        with self.arm.held() as req:
            yield req
            yield self.engine.timeout(self.calibration.disk_service_s)
        self.writes += 1
        self._store[(space_id, page_index)] = page

    def drop_space(self, space_id):
        """Discard all page images of one address space."""
        doomed = [key for key in self._store if key[0] == space_id]
        for key in doomed:
            del self._store[key]
        return len(doomed)


class DiskError(Exception):
    """Read of a page image that is not on this disk."""
