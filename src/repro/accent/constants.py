"""Architectural constants of the simulated Accent/Perq machine."""

#: Accent used 512-byte virtual-memory pages (paper §2.1).
PAGE_SIZE = 512

#: A process may address up to 4 gigabytes (paper §3.1).
SPACE_LIMIT = 4 * 1024 * 1024 * 1024

#: Number of pages in a full address space.
SPACE_PAGES = SPACE_LIMIT // PAGE_SIZE


def page_of(address):
    """Page index containing byte ``address``."""
    return address // PAGE_SIZE


def page_base(page_index):
    """First byte address of page ``page_index``."""
    return page_index * PAGE_SIZE


def pages_spanned(start, size):
    """Range of page indices touched by ``size`` bytes at ``start``."""
    if size <= 0:
        return range(0, 0)
    first = start // PAGE_SIZE
    last = (start + size - 1) // PAGE_SIZE
    return range(first, last + 1)
