"""One simulated machine of the testbed."""

from repro.accent.disk import PagingDisk
from repro.accent.kernel import Kernel
from repro.accent.pager import Pager
from repro.accent.vm.address_space import Residency
from repro.accent.vm.physical import PhysicalMemory
from repro.sim import Resource
from repro.store.source import PageResolver


class Host:
    """A Perq workstation: kernel, pager, disk, frames, and (once the
    network layer attaches one) a NetMsgServer."""

    def __init__(self, engine, name, calibration, registry, metrics):
        self.engine = engine
        self.name = name
        self.calibration = calibration
        self.registry = registry
        self.metrics = metrics
        self.physical = PhysicalMemory(calibration.frame_count)
        self.disk = PagingDisk(engine, calibration, name=f"{name}-disk")
        #: The user-level CPU: workload compute slices contend here, so
        #: co-located processes genuinely slow one another down (the
        #: premise of the §6 automatic-migration experiments).
        self.cpu = Resource(engine, capacity=1, name=f"{name}-cpu")
        self._spaces = {}
        #: Attached by repro.net when the host joins a network.
        self.nms = None
        #: True while a fault-plan crash has this machine down; a
        #: crashed host neither sends nor receives fragments.
        self.crashed = False
        #: The world's FaultInjector, when one is attached (the pager
        #: only arms its reply deadline in fault-injected worlds).
        self.fault_injector = None
        #: The residual-dependency flusher daemon, when enabled.
        self.flusher = None
        #: This host's content-addressed page cache, attached by
        #: ``TestbedWorld.enable_store`` (None = store off).
        self.store = None
        #: The unified page-source resolver — *every* page fetch on
        #: this host routes through it; origin-only until a store
        #: directory is attached.
        self.resolver = PageResolver(self)
        self.pager = Pager(self)
        self.kernel = Kernel(self)

    def __repr__(self):
        state = " CRASHED" if self.crashed else ""
        return f"<Host {self.name}{state} processes={len(self.kernel.processes)}>"

    # -- fault injection -----------------------------------------------------------
    def crash(self):
        """Take the machine down: all its traffic drops from now on."""
        self.crashed = True
        # The content cache is volatile memory: a crash empties it and
        # withdraws this host from the store directory, so resolvers
        # stop routing faults here.
        if self.store is not None:
            self.store.clear()

    def recover(self):
        """Bring the machine back (volatile state was already lost)."""
        self.crashed = False

    # -- address-space registry --------------------------------------------------
    def register_space(self, space):
        """Track an address space so eviction can resolve its pages."""
        self._spaces[space.space_id] = space

    def unregister_space(self, space):
        """Forget a destroyed or excised address space."""
        self._spaces.pop(space.space_id, None)

    def space_by_id(self, space_id):
        """The registered space with this id (KeyError if unknown)."""
        return self._spaces[space_id]

    # -- conveniences --------------------------------------------------------------
    def create_port(self, name=None, backlog=None):
        """Allocate a port homed at this host."""
        return self.registry.create(self, name=name, backlog=backlog)

    def make_resident_instant(self, space, index):
        """Builder path: mark an existing page resident, claiming a frame.

        Used when constructing pre-migration state; charges no simulated
        time.  Raises if the frame pool would need an eviction (builders
        should size the pool or place pages on disk explicitly).
        """
        victim = self.physical.allocate((space.space_id, index))
        if victim is not None:
            raise RuntimeError(
                "builder overfilled physical memory; place pages on disk"
            )
        space.set_residency(index, Residency.RESIDENT)

    def place_on_disk_instant(self, space, index):
        """Builder path: push an existing page's image to the local disk."""
        entry = space.entry(index)
        self.disk.store_instant(space.space_id, index, entry.page)
        self.physical.evict((space.space_id, index))
        space.set_residency(index, Residency.ON_DISK)
