"""Per-host physical memory: a bounded frame pool with LRU eviction.

Accent treats physical memory as a disk cache (paper §4.2.3) — old file
pages linger in the resident set long after their last use, which is
exactly why resident-set shipment performs poorly for the Pasmac
processes.  The LRU bookkeeping here is what defines "resident set" for
the RS migration strategy.
"""

from collections import OrderedDict


class OutOfFrames(Exception):
    """Raised when a frame is needed and no victim can be chosen."""


class PhysicalMemory:
    """A pool of page frames identified by (address-space id, page index)."""

    def __init__(self, frame_count):
        if frame_count <= 0:
            raise ValueError(f"frame_count must be positive, got {frame_count}")
        self.frame_count = frame_count
        # key -> None; ordering is LRU (oldest first).
        self._lru = OrderedDict()

    def __repr__(self):
        return f"<PhysicalMemory {len(self._lru)}/{self.frame_count} frames>"

    def __contains__(self, key):
        return key in self._lru

    @property
    def used(self):
        """Number of frames currently occupied."""
        return len(self._lru)

    @property
    def free(self):
        """Number of unoccupied frames."""
        return self.frame_count - len(self._lru)

    def touch(self, key):
        """Record a reference, moving ``key`` to most-recently-used."""
        if key not in self._lru:
            raise KeyError(f"{key!r} is not resident")
        self._lru.move_to_end(key)

    def allocate(self, key):
        """Claim a frame for ``key``; returns an evicted key or ``None``.

        The caller is responsible for paging the victim's contents out
        (the pager charges the disk-write time).
        """
        if key in self._lru:
            self._lru.move_to_end(key)
            return None
        victim = None
        if len(self._lru) >= self.frame_count:
            try:
                victim, _ = self._lru.popitem(last=False)
            except KeyError:  # pragma: no cover - guarded by frame_count > 0
                raise OutOfFrames("no frames and no victims") from None
        self._lru[key] = None
        return victim

    def evict(self, key):
        """Explicitly release the frame held by ``key`` (if any)."""
        self._lru.pop(key, None)

    def release_space(self, space_id):
        """Release every frame belonging to one address space."""
        doomed = [key for key in self._lru if key[0] == space_id]
        for key in doomed:
            del self._lru[key]
        return len(doomed)

    def resident_keys(self, space_id=None):
        """Keys of resident frames, LRU-oldest first."""
        if space_id is None:
            return list(self._lru)
        return [key for key in self._lru if key[0] == space_id]
