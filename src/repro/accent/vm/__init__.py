"""Accent virtual memory: pages, address spaces and accessibility maps."""

from repro.accent.vm.accessibility import (
    BAD_MEM,
    IMAG_MEM,
    REAL_MEM,
    REAL_ZERO_MEM,
    Accessibility,
)
from repro.accent.vm.address_space import AddressSpace, PageEntry, Residency
from repro.accent.vm.amap import AMap, AMapRun
from repro.accent.vm.intervals import IntervalMap
from repro.accent.vm.page import Page
from repro.accent.vm.physical import OutOfFrames, PhysicalMemory

__all__ = [
    "AMap",
    "AMapRun",
    "Accessibility",
    "AddressSpace",
    "BAD_MEM",
    "IMAG_MEM",
    "IntervalMap",
    "OutOfFrames",
    "Page",
    "PageEntry",
    "PhysicalMemory",
    "REAL_MEM",
    "REAL_ZERO_MEM",
    "Residency",
]
