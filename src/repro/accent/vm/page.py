"""Reference-counted page frames with real contents.

Pages carry actual bytes so that the migration pipeline can be verified
end-to-end: after a copy-on-reference migration, the destination process
must observe exactly the bytes the source process wrote.  Sharing with a
reference count implements Accent's copy-on-write message transfer.
"""

import hashlib

from repro.accent.constants import PAGE_SIZE

_ZERO = bytes(PAGE_SIZE)

#: Bytes of a page content id (the content-addressed store's key).
CONTENT_ID_BYTES = 16


def content_id_of(data):
    """The content id of ``data``: a 16-byte blake2b digest.

    Content ids name page *bytes*, not page locations — two pages with
    equal contents (fork siblings, zero pages, shared code) share one
    id, which is what lets the cluster store dedup them on the wire and
    serve them from any holder (docs/content-store.md).
    """
    return hashlib.blake2b(data, digest_size=CONTENT_ID_BYTES).digest()


#: The (precomputed) content id of an all-zero page.
ZERO_CONTENT_ID = content_id_of(_ZERO)


class Page:
    """One 512-byte page of data, shareable copy-on-write."""

    __slots__ = ("_data", "refs")

    def __init__(self, data=None):
        if data is None:
            data = _ZERO
        elif len(data) < PAGE_SIZE:
            data = bytes(data) + _ZERO[len(data):]
        elif len(data) > PAGE_SIZE:
            raise ValueError(f"page data of {len(data)} bytes exceeds {PAGE_SIZE}")
        self._data = bytes(data)
        self.refs = 1

    def __repr__(self):
        return f"<Page refs={self.refs} head={self._data[:8].hex()}>"

    @property
    def data(self):
        """The page contents (immutable bytes)."""
        return self._data

    @property
    def content_id(self):
        """Content id of the current bytes (never cached: ``write``
        mutates ``_data`` in place when the page is unshared)."""
        return content_id_of(self._data)

    @property
    def shared(self):
        """True when more than one mapping references this frame."""
        return self.refs > 1

    def share(self):
        """Add a reference (copy-on-write mapping) and return self."""
        self.refs += 1
        return self

    def release(self):
        """Drop a reference."""
        if self.refs <= 0:
            raise ValueError("release of page with no references")
        self.refs -= 1

    def write(self, offset, data):
        """Write ``data`` at ``offset``; returns the page to keep using.

        If the page is shared, the deferred copy is performed first
        (copy-on-write) and the private copy is returned — the caller
        must replace its mapping with the returned page.
        """
        if offset < 0 or offset + len(data) > PAGE_SIZE:
            raise ValueError(
                f"write of {len(data)} bytes at offset {offset} exceeds page"
            )
        target = self
        if self.shared:
            self.refs -= 1
            target = Page(self._data)
        target._data = (
            target._data[:offset] + bytes(data) + target._data[offset + len(data):]
        )
        return target

    def fork_copy(self):
        """An independent deep copy (used by physical shipment)."""
        return Page(self._data)

    @staticmethod
    def zero():
        """A fresh zero-filled page (FillZero fault result)."""
        return Page()
