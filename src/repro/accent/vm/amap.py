"""Accessibility Maps (paper §2.3).

An AMap answers "how accessible is this address range?" without touching
it — the information the NetMsgServer needs to fragment messages around
imaginary subranges, and that the kernel needs to avoid deadlocking on
port-backed memory while holding the system critical section.
"""

from collections import namedtuple

from repro.accent.vm.accessibility import (
    Accessibility,
    BAD_MEM,
    IMAG_MEM,
    REAL_MEM,
    REAL_ZERO_MEM,
)
from repro.accent.vm.intervals import IntervalMap

AMapRun = namedtuple("AMapRun", "start end accessibility")
AMapRun.__doc__ = "One maximal run: [start, end) bytes of one class."


class AMap:
    """An ordered set of accessibility runs over an address space.

    Unmapped addresses are implicitly :data:`BAD_MEM`; only legal classes
    are stored.  Runs of equal class coalesce automatically.
    """

    #: Approximate wire size of one encoded run (start, length, class).
    RUN_ENCODING_BYTES = 9

    def __init__(self):
        self._runs = IntervalMap()

    def __repr__(self):
        return f"<AMap entries={self.entry_count} bytes={self.total_bytes}>"

    def __eq__(self, other):
        if not isinstance(other, AMap):
            return NotImplemented
        return list(self.runs()) == list(other.runs())

    def add_run(self, start, end, accessibility):
        """Record that ``[start, end)`` has the given class."""
        if not isinstance(accessibility, Accessibility):
            raise TypeError(f"{accessibility!r} is not an Accessibility")
        if accessibility is BAD_MEM:
            raise ValueError("BAD_MEM runs are implicit; do not store them")
        self._runs.add(start, end, accessibility)

    def classify(self, address):
        """The class of one byte address."""
        return self._runs.get(address, BAD_MEM)

    def runs(self):
        """Iterate :class:`AMapRun` in address order."""
        for start, end, value in self._runs.runs():
            yield AMapRun(start, end, value)

    def runs_of(self, accessibility):
        """Iterate runs of a single class."""
        for run in self.runs():
            if run.accessibility is accessibility:
                yield run

    def overlapping(self, start, end):
        """Iterate runs clipped to ``[start, end)``."""
        for run_start, run_end, value in self._runs.overlapping(start, end):
            yield AMapRun(run_start, run_end, value)

    @property
    def entry_count(self):
        """Number of stored runs (drives AMap wire size)."""
        return len(self._runs)

    @property
    def total_bytes(self):
        """Bytes covered by legal classes."""
        return self._runs.span()

    def bytes_of(self, accessibility):
        """Bytes covered by one class."""
        return sum(
            run.end - run.start for run in self.runs_of(accessibility)
        )

    @property
    def real_bytes(self):
        return self.bytes_of(REAL_MEM)

    @property
    def real_zero_bytes(self):
        return self.bytes_of(REAL_ZERO_MEM)

    @property
    def imaginary_bytes(self):
        return self.bytes_of(IMAG_MEM)

    @property
    def wire_bytes(self):
        """Bytes this AMap occupies inside a Core message."""
        return self.entry_count * self.RUN_ENCODING_BYTES

    def copy(self):
        """An independent copy of this map."""
        clone = AMap()
        clone._runs = self._runs.copy()
        return clone
