"""Sparse process address spaces.

An address space is a region table (an :class:`IntervalMap` over byte
addresses) plus a page table holding only the pages that actually exist.
A validated Lisp space spans four gigabytes but costs a handful of region
runs and a couple of thousand page entries — exactly the property that
makes Accent's lazy zero-fill affordable (paper §2.3, RealZeroMem).

Regions come in two kinds:

* *validated* — conceptually zero-filled; first touch raises a FillZero
  fault and materialises a page without consulting the disk.
* *imaginary* — owed through IPC to a backing port; first touch raises an
  imaginary fault.  The handle identifies the backing object.

Pages that exist are *real*; they are either resident in physical memory
or paged out to the local disk.  The distinction is tracked here, but the
frame pool itself lives in :class:`~repro.accent.vm.physical.PhysicalMemory`.
"""

import bisect
import enum
from itertools import count

from repro.accent.constants import PAGE_SIZE, SPACE_LIMIT, pages_spanned
from repro.accent.vm.accessibility import (
    BAD_MEM,
    IMAG_MEM,
    REAL_MEM,
    REAL_ZERO_MEM,
)
from repro.accent.vm.amap import AMap
from repro.accent.vm.intervals import IntervalMap
from repro.accent.vm.page import Page

_space_ids = count(1)

#: Region-table value for plain validated (zero-fill) memory.
VALIDATED = "validated"


class Residency(enum.Enum):
    """Where a real page's current contents live."""

    RESIDENT = "resident"
    ON_DISK = "on-disk"


class ImaginaryMapping:
    """Region-table value marking memory owed through a backing port.

    ``handle`` is opaque to the VM layer; the copy-on-reference facility
    stores whatever it needs to route page requests (typically a port
    reference plus an offset translation).
    """

    __slots__ = ("handle", "base_offset")

    def __init__(self, handle, base_offset=0):
        self.handle = handle
        self.base_offset = base_offset

    def __repr__(self):
        return f"<ImaginaryMapping handle={self.handle!r}>"


class PageEntry:
    """Page-table slot: the page object plus its residency."""

    __slots__ = ("page", "residency", "prefetched", "last_touch")

    def __init__(self, page, residency):
        self.page = page
        self.residency = residency
        #: True while the page arrived by prefetch and has not yet been
        #: referenced (prefetch hit-ratio accounting, §4.3.3).
        self.prefetched = False
        #: Simulated time of the most recent reference (None if never
        #: referenced) — the input to Denning working-set estimation.
        self.last_touch = None

    def __repr__(self):
        return f"<PageEntry {self.residency.value} {self.page!r}>"


class AddressSpaceError(Exception):
    """Illegal address-space operation (unaligned, unvalidated, ...)."""


class AddressSpace:
    """One process's virtual address space."""

    def __init__(self, name=None):
        self.space_id = next(_space_ids)
        self.name = name or f"space-{self.space_id}"
        #: Byte-granular region table; values are VALIDATED or
        #: :class:`ImaginaryMapping` instances.
        self.regions = IntervalMap()
        #: page index -> :class:`PageEntry`; only existing (real) pages.
        self.page_table = {}
        self._sorted_pages = []  # kept sorted for run iteration
        self._sorted_dirty = False
        #: Incremental :attr:`imaginary_bytes` — every structural
        #: mutation adjusts it, so the telemetry sampler reads it in
        #: O(1) instead of rescanning the run table each tick.
        self._imag_bytes = 0

    def __repr__(self):
        return (
            f"<AddressSpace {self.name} total={self.total_bytes} "
            f"real={self.real_bytes}>"
        )

    # -- region management ---------------------------------------------------
    def validate(self, start, size):
        """Allocate ``[start, start+size)`` as zero-filled memory."""
        self._check_range(start, size)
        for run_start, run_end, _ in self.regions.overlapping(start, start + size):
            raise AddressSpaceError(
                f"validate overlaps existing region [{run_start}, {run_end})"
            )
        self.regions.add(start, start + size, VALIDATED)

    def map_imaginary(self, start, size, handle, base_offset=0):
        """Map ``[start, start+size)`` to an imaginary object."""
        self._check_range(start, size)
        for run_start, run_end, _ in self.regions.overlapping(start, start + size):
            raise AddressSpaceError(
                f"imaginary map overlaps region [{run_start}, {run_end})"
            )
        self.regions.add(
            start, start + size, ImaginaryMapping(handle, base_offset)
        )
        # A fresh mapping holds no real pages yet: all of it is owed.
        self._imag_bytes += size

    def invalidate(self, start, size):
        """Remove any region coverage and pages inside the range."""
        self._check_range(start, size)
        end = start + size
        for run_start, run_end, value in self.regions.overlapping(start, end):
            if value is VALIDATED:
                continue
            lo, hi = max(run_start, start), min(run_end, end)
            owed = hi - lo
            for index in pages_spanned(lo, hi - lo):
                if index in self.page_table:
                    owed -= PAGE_SIZE
            self._imag_bytes -= owed
        self.regions.remove(start, start + size)
        for index in list(pages_spanned(start, size)):
            if index in self.page_table:
                self._drop_page(index)

    def _check_range(self, start, size):
        if start % PAGE_SIZE or size % PAGE_SIZE:
            raise AddressSpaceError(
                f"range ({start}, {size}) is not page-aligned"
            )
        if size <= 0:
            raise AddressSpaceError(f"size must be positive, got {size}")
        if start < 0 or start + size > SPACE_LIMIT:
            raise AddressSpaceError(
                f"range ({start}, {size}) outside the 4 GB space"
            )

    # -- accessibility ---------------------------------------------------------
    def accessibility(self, address):
        """The AMap class of the byte at ``address`` (paper §2.3)."""
        if (address // PAGE_SIZE) in self.page_table:
            return REAL_MEM
        region = self.regions.get(address)
        if region is None:
            return BAD_MEM
        if region is VALIDATED:
            return REAL_ZERO_MEM
        return IMAG_MEM

    def region_at(self, address):
        """The region value covering ``address`` (or ``None``)."""
        return self.regions.get(address)

    def amap(self):
        """Construct the Accessibility Map for the whole space."""
        amap = AMap()
        pages = self._sorted_page_list()
        for run_start, run_end, value in self.regions.runs():
            base_class = REAL_ZERO_MEM if value is VALIDATED else IMAG_MEM
            first_page = run_start // PAGE_SIZE
            last_page = (run_end - 1) // PAGE_SIZE
            lo = bisect.bisect_left(pages, first_page)
            hi = bisect.bisect_right(pages, last_page)
            cursor = run_start
            for index in pages[lo:hi]:
                page_start = index * PAGE_SIZE
                page_end = min(page_start + PAGE_SIZE, run_end)
                page_start = max(page_start, run_start)
                if page_start > cursor:
                    amap.add_run(cursor, page_start, base_class)
                amap.add_run(page_start, page_end, REAL_MEM)
                cursor = page_end
            if cursor < run_end:
                amap.add_run(cursor, run_end, base_class)
        return amap

    # -- page management --------------------------------------------------------
    def install_page(self, index, page, residency=Residency.RESIDENT):
        """Enter a real page at page ``index`` (fault completion path)."""
        region = self.regions.get(index * PAGE_SIZE)
        if region is None:
            raise AddressSpaceError(
                f"page {index} lies outside every region of {self.name}"
            )
        if index in self.page_table:
            raise AddressSpaceError(f"page {index} already present")
        if region is not VALIDATED:
            self._imag_bytes -= PAGE_SIZE  # this page is no longer owed
        self.page_table[index] = PageEntry(page, residency)
        # Keep the sorted index list incrementally when appending in
        # order; otherwise mark it for a lazy rebuild.
        if not self._sorted_dirty:
            if self._sorted_pages and index < self._sorted_pages[-1]:
                self._sorted_dirty = True
            else:
                self._sorted_pages.append(index)

    def _drop_page(self, index):
        entry = self.page_table.pop(index)
        entry.page.release()
        self._sorted_dirty = True
        region = self.regions.get(index * PAGE_SIZE)
        if region is not None and region is not VALIDATED:
            self._imag_bytes += PAGE_SIZE  # owed again through the mapping
        return entry

    def _sorted_page_list(self):
        if self._sorted_dirty:
            self._sorted_pages = sorted(self.page_table)
            self._sorted_dirty = False
        return self._sorted_pages

    def entry(self, index):
        """The :class:`PageEntry` at page ``index`` (or ``None``)."""
        return self.page_table.get(index)

    def set_residency(self, index, residency):
        """Mark page ``index`` resident or on-disk."""
        self.page_table[index].residency = residency

    # -- content access (builder/verification path; no simulated time) ---------
    def poke(self, address, data):
        """Write bytes, materialising zero pages as needed.

        This is the *builder* path used to construct pre-migration state
        and by fault handlers to install fetched data; the simulated cost
        of getting here is charged by the kernel/pager, not by poke.
        """
        # Fast path: a write to an existing page, entirely inside it —
        # the workload step loop stamps a short marker this way on every
        # write step, so skip the accessibility classification (a real
        # page is REAL_MEM by definition).
        index, in_page = divmod(address, PAGE_SIZE)
        if in_page + len(data) <= PAGE_SIZE:
            entry = self.page_table.get(index)
            if entry is not None:
                entry.page = entry.page.write(in_page, data)
                return
        offset = 0
        while offset < len(data):
            index = (address + offset) // PAGE_SIZE
            in_page = (address + offset) % PAGE_SIZE
            chunk = min(PAGE_SIZE - in_page, len(data) - offset)
            self._poke_page(index, in_page, data[offset:offset + chunk])
            offset += chunk

    def _poke_page(self, index, in_page, chunk):
        accessibility = self.accessibility(index * PAGE_SIZE)
        if accessibility is BAD_MEM:
            raise AddressSpaceError(f"write to unvalidated page {index}")
        if accessibility is IMAG_MEM:
            raise AddressSpaceError(
                f"write to imaginary page {index}: fetch it first"
            )
        entry = self.page_table.get(index)
        if entry is None:
            self.install_page(index, Page.zero())
            entry = self.page_table[index]
        entry.page = entry.page.write(in_page, chunk)

    def peek(self, address, size):
        """Read bytes; zero regions read as zeros.

        Reading unfetched imaginary memory raises — callers must go
        through the fault path so the copy-on-reference machinery runs.
        """
        # Fast path: a read from an existing page, entirely inside it
        # (the per-step content verification reads a 32-byte head).
        index, in_page = divmod(address, PAGE_SIZE)
        if in_page + size <= PAGE_SIZE:
            entry = self.page_table.get(index)
            if entry is not None:
                return entry.page.data[in_page:in_page + size]
        out = bytearray()
        remaining = size
        cursor = address
        while remaining > 0:
            index = cursor // PAGE_SIZE
            in_page = cursor % PAGE_SIZE
            chunk = min(PAGE_SIZE - in_page, remaining)
            entry = self.page_table.get(index)
            if entry is not None:
                out += entry.page.data[in_page:in_page + chunk]
            else:
                accessibility = self.accessibility(cursor)
                if accessibility is REAL_ZERO_MEM:
                    out += bytes(chunk)
                elif accessibility is IMAG_MEM:
                    raise AddressSpaceError(
                        f"read of unfetched imaginary page {index}"
                    )
                else:
                    raise AddressSpaceError(f"read of unvalidated page {index}")
            cursor += chunk
            remaining -= chunk
        return bytes(out)

    # -- statistics (Table 4-1 / 4-2 inputs) ------------------------------------
    @property
    def total_bytes(self):
        """Total validated + imaginary memory (paper's *Total*)."""
        return self.regions.span()

    @property
    def real_bytes(self):
        """Existing non-zero data (paper's *Real*)."""
        return len(self.page_table) * PAGE_SIZE

    @property
    def real_zero_bytes(self):
        """Allocated but untouched zero-fill memory (paper's *RealZ*)."""
        zero = 0
        pages = self._sorted_page_list()
        for run_start, run_end, value in self.regions.runs():
            if value is not VALIDATED:
                continue
            span = run_end - run_start
            first_page = run_start // PAGE_SIZE
            last_page = (run_end - 1) // PAGE_SIZE
            lo = bisect.bisect_left(pages, first_page)
            hi = bisect.bisect_right(pages, last_page)
            for index in pages[lo:hi]:
                page_start = max(index * PAGE_SIZE, run_start)
                page_end = min(index * PAGE_SIZE + PAGE_SIZE, run_end)
                span -= page_end - page_start
            zero += span
        return zero

    @property
    def imaginary_bytes(self):
        """Memory still owed through imaginary mappings (O(1))."""
        return self._imag_bytes

    def _scan_imaginary_bytes(self):
        """Recompute :attr:`imaginary_bytes` from the run table.

        The ground truth the incremental counter must match — tests
        cross-check the two after arbitrary mutation sequences.
        """
        owed = 0
        pages = self._sorted_page_list()
        for run_start, run_end, value in self.regions.runs():
            if value is VALIDATED:
                continue
            span = run_end - run_start
            first_page = run_start // PAGE_SIZE
            last_page = (run_end - 1) // PAGE_SIZE
            lo = bisect.bisect_left(pages, first_page)
            hi = bisect.bisect_right(pages, last_page)
            span -= (hi - lo) * PAGE_SIZE
            owed += span
        return owed

    def real_page_indices(self):
        """Sorted indices of existing pages."""
        return list(self._sorted_page_list())

    def resident_page_indices(self):
        """Sorted indices of pages currently in physical memory."""
        return [
            index
            for index in self._sorted_page_list()
            if self.page_table[index].residency is Residency.RESIDENT
        ]

    def resident_bytes(self):
        """Size of the resident set (Table 4-2's *RS Size*)."""
        return len(self.resident_page_indices()) * PAGE_SIZE

    def real_runs(self):
        """Contiguous runs of existing pages as (first, last) inclusive."""
        runs = []
        for index in self._sorted_page_list():
            if runs and index == runs[-1][1] + 1:
                runs[-1][1] = index
            else:
                runs.append([index, index])
        return [(first, last) for first, last in runs]
