"""The four AMap memory "distances" of paper §2.3."""

import enum


class Accessibility(enum.IntEnum):
    """How far away the data behind an address range is.

    The integer order encodes the paper's distance ranking: immediately
    accessible < moderately accessible < distantly accessible < illegal.
    """

    #: Validated but never touched; conceptually zero-filled.  A FillZero
    #: fault materialises the page without consulting the disk.
    REAL_ZERO_MEM = 0
    #: Present in physical memory or fetchable from the local disk.
    REAL_MEM = 1
    #: Mapped to an imaginary segment; a touch generates an IPC page
    #: request to the backing port and may take arbitrarily long.
    IMAG_MEM = 2
    #: Not validated; touching it is an addressing error.
    BAD_MEM = 3

    @property
    def distance(self):
        """Human-readable distance rating from the paper."""
        return _DISTANCES[self]

    @property
    def is_legal(self):
        """Whether a reference to this class can be satisfied at all."""
        return self is not Accessibility.BAD_MEM


_DISTANCES = {
    Accessibility.REAL_ZERO_MEM: "immediate",
    Accessibility.REAL_MEM: "moderate",
    Accessibility.IMAG_MEM: "distant",
    Accessibility.BAD_MEM: "infinite",
}

REAL_ZERO_MEM = Accessibility.REAL_ZERO_MEM
REAL_MEM = Accessibility.REAL_MEM
IMAG_MEM = Accessibility.IMAG_MEM
BAD_MEM = Accessibility.BAD_MEM
