"""A sorted, non-overlapping interval-to-value map.

Used for the region tables of sparse 4-gigabyte address spaces and for
accessibility maps, where materialising anything per-page would be
hopeless (a validated Lisp space spans eight million pages).
"""

import bisect


class IntervalMap:
    """Maps half-open integer intervals ``[start, end)`` to values.

    Intervals never overlap; adjacent intervals with equal values are
    coalesced.  Insertion overwrites any overlapped portion of existing
    intervals (splitting them when partially covered).
    """

    def __init__(self):
        self._starts = []
        self._ends = []
        self._values = []

    def __len__(self):
        return len(self._starts)

    def __repr__(self):
        runs = ", ".join(
            f"[{s},{e})={v!r}" for s, e, v in list(self.runs())[:4]
        )
        suffix = ", ..." if len(self) > 4 else ""
        return f"<IntervalMap {runs}{suffix}>"

    def __eq__(self, other):
        if not isinstance(other, IntervalMap):
            return NotImplemented
        return list(self.runs()) == list(other.runs())

    def add(self, start, end, value):
        """Set ``[start, end)`` to ``value``, overwriting overlaps."""
        if start >= end:
            raise ValueError(f"empty interval [{start}, {end})")
        # Append fast path: builders and amap() insert in address order,
        # so the new run usually lands at or beyond the current end —
        # no carving, no mid-list insertion.
        ends = self._ends
        if not ends or start >= ends[-1]:
            if ends and ends[-1] == start and self._values[-1] == value:
                ends[-1] = end  # coalesce with the trailing run
            else:
                self._starts.append(start)
                ends.append(end)
                self._values.append(value)
            return
        self._carve(start, end)
        index = bisect.bisect_left(self._starts, start)
        self._starts.insert(index, start)
        self._ends.insert(index, end)
        self._values.insert(index, value)
        self._coalesce_around(index)

    def remove(self, start, end):
        """Clear any mapping inside ``[start, end)``."""
        if start >= end:
            raise ValueError(f"empty interval [{start}, {end})")
        self._carve(start, end)

    def get(self, point, default=None):
        """Value at integer ``point``, or ``default``."""
        index = bisect.bisect_right(self._starts, point) - 1
        if index >= 0 and point < self._ends[index]:
            return self._values[index]
        return default

    def covers(self, start, end):
        """True if every point of ``[start, end)`` is mapped."""
        cursor = start
        for run_start, run_end, _ in self.overlapping(start, end):
            if run_start > cursor:
                return False
            cursor = run_end
        return cursor >= end

    def runs(self):
        """Iterate ``(start, end, value)`` in address order."""
        return zip(self._starts, self._ends, self._values)

    def overlapping(self, start, end):
        """Iterate runs intersecting ``[start, end)``, clipped to it."""
        index = bisect.bisect_right(self._starts, start) - 1
        if index < 0:
            index = 0
        while index < len(self._starts) and self._starts[index] < end:
            run_start, run_end = self._starts[index], self._ends[index]
            if run_end > start:
                yield max(run_start, start), min(run_end, end), self._values[index]
            index += 1

    def span(self):
        """Total number of points mapped."""
        return sum(e - s for s, e, _ in self.runs())

    def copy(self):
        """An independent shallow copy."""
        clone = IntervalMap()
        clone._starts = list(self._starts)
        clone._ends = list(self._ends)
        clone._values = list(self._values)
        return clone

    # -- internals -----------------------------------------------------------
    def _carve(self, start, end):
        """Remove all coverage of ``[start, end)``, splitting edges."""
        index = bisect.bisect_right(self._starts, start) - 1
        if index < 0:
            index = 0
        while index < len(self._starts) and self._starts[index] < end:
            run_start, run_end = self._starts[index], self._ends[index]
            if run_end <= start:
                index += 1
                continue
            value = self._values[index]
            # Delete the run, then re-insert any uncovered flanks.
            del self._starts[index], self._ends[index], self._values[index]
            if run_start < start:
                self._starts.insert(index, run_start)
                self._ends.insert(index, start)
                self._values.insert(index, value)
                index += 1
            if run_end > end:
                self._starts.insert(index, end)
                self._ends.insert(index, run_end)
                self._values.insert(index, value)
                return

    def _coalesce_around(self, index):
        """Merge the run at ``index`` with equal-valued neighbours."""
        # Merge with successor first so `index` stays valid.
        if (
            index + 1 < len(self._starts)
            and self._ends[index] == self._starts[index + 1]
            and self._values[index] == self._values[index + 1]
        ):
            self._ends[index] = self._ends[index + 1]
            del self._starts[index + 1], self._ends[index + 1], self._values[index + 1]
        if (
            index > 0
            and self._ends[index - 1] == self._starts[index]
            and self._values[index - 1] == self._values[index]
        ):
            self._ends[index - 1] = self._ends[index]
            del self._starts[index], self._ends[index], self._values[index]
