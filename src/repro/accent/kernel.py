"""The Accent kernel: fault entry point, IPC send path, and the
ExciseProcess / InsertProcess migration traps (paper §3.1).

All kernel operations that consume simulated time are generators meant
to be driven with ``yield from`` inside a simulated process.  The fast
path — touching a resident page — returns ``None`` so workloads pay
nothing for it, mirroring a real TLB hit.
"""

from repro.accent.constants import PAGE_SIZE
from repro.accent.ipc.message import (
    AMapSection,
    InlineSection,
    IOUSection,
    Message,
    RegionSection,
    RightsSection,
)
from repro.accent.ipc.port import RECEIVE
from repro.accent.ipc.stats import TransferStats
from repro.accent.pager import OP_IMAG_DEATH
from repro.accent.process import AccentProcess, ProcessStatus
from repro.accent.vm.accessibility import REAL_MEM, REAL_ZERO_MEM
from repro.accent.vm.address_space import (
    AddressSpace,
    AddressSpaceError,
    ImaginaryMapping,
    Residency,
    VALIDATED,
)
from repro.faults.errors import TransportError


class AddressingError(Exception):
    """A BadMem reference: the debugger is invoked (paper §2.3)."""


class Debugger:
    """Per-host debugger: records BadMem references for the human user.

    Paper §2.3: "Referencing a BadMem page invokes a debugger so the
    human user can analyze and properly terminate the delinquent
    process."  We record enough for the analysis (who, which page,
    when) before the fault surfaces as an :class:`AddressingError`.
    """

    def __init__(self, host_name):
        self.host_name = host_name
        #: (simulated time, process name, page index) per invocation.
        self.invocations = []

    def __repr__(self):
        return f"<Debugger {self.host_name} invocations={len(self.invocations)}>"

    def invoke(self, now, process, page_index):
        """Record one BadMem reference for later analysis."""
        self.invocations.append((now, process.name, page_index))


class KernelError(Exception):
    """Illegal kernel operation (unknown process, malformed context)."""


class Kernel:
    """Per-host kernel state and traps."""

    def __init__(self, host):
        self.host = host
        self.engine = host.engine
        self.calibration = host.calibration
        self.processes = {}
        self.stats = TransferStats()
        self.debugger = Debugger(host.name)

    def __repr__(self):
        return f"<Kernel {self.host.name} processes={len(self.processes)}>"

    # -- process management ----------------------------------------------------
    def register(self, process):
        """Adopt a process (newly created or just inserted)."""
        if process.name in self.processes:
            raise KernelError(f"process {process.name!r} already present")
        process.host = self.host
        process.status = ProcessStatus.RUNNABLE
        self.processes[process.name] = process
        self.host.register_space(process.space)
        # Ports this process can Receive on are now served from here.
        for right in process.rights_for(RECEIVE):
            right.port.move_home(self.host)
        return process

    def lookup(self, name):
        """The process named ``name`` on this host (KernelError if absent)."""
        try:
            return self.processes[name]
        except KeyError:
            raise KernelError(
                f"no process {name!r} on host {self.host.name}"
            ) from None

    # -- memory reference path ----------------------------------------------------
    def touch(self, process, page_index, write=False):
        """Reference one page; ``None`` if free, else a cost generator.

        Callers do::

            cost = kernel.touch(proc, index, write=True)
            if cost is not None:
                yield from cost
        """
        space = process.space
        entry = space.page_table.get(page_index)
        if entry is not None and entry.residency is Residency.RESIDENT:
            self.host.physical.touch((space.space_id, page_index))
            entry.last_touch = self.engine._now
            if entry.prefetched:
                entry.prefetched = False
                self.host.metrics.record_prefetch_hit()
            if write and entry.page.shared:
                return self._cow_break()
            return None
        return self._slow_touch(process, space, page_index, write)

    def _cow_break(self):
        """Charge the deferred-copy cost for a write to a shared page."""
        self.stats.cow_breaks += 1
        self.stats.cow_break_bytes += PAGE_SIZE
        yield self.engine.timeout(self.calibration.cow_break_s)

    def _slow_touch(self, process, space, index, write):
        entry = space.entry(index)
        if entry is not None:
            # Real page, currently paged out to the local disk.
            yield from self.host.pager.disk_fault(space, index)
        else:
            region = space.region_at(index * PAGE_SIZE)
            if region is None:
                self.debugger.invoke(self.engine.now, process, index)
                raise AddressingError(
                    f"{process.name} touched BadMem page {index}"
                )
            if region is VALIDATED:
                yield from self.host.pager.fill_zero_fault(space, index)
            elif isinstance(region, ImaginaryMapping):
                yield from self.host.pager.imaginary_fault(space, index, region)
            else:  # pragma: no cover - region table holds only these two
                raise KernelError(f"unknown region value {region!r}")
        entry = space.entry(index)
        entry.last_touch = self.engine.now
        if entry.prefetched:
            # The page raced in via another fault's prefetch.
            entry.prefetched = False
            self.host.metrics.record_prefetch_hit()
        if write and entry.page.shared:
            yield from self._cow_break()

    # -- IPC send path ----------------------------------------------------------
    def send(self, message):
        """Generator: deliver ``message``; completes once enqueued at
        the destination port (possibly across the network)."""
        message.source_host = self.host
        self.stats.messages += 1
        self._account_transfer(message)
        yield self.engine.timeout(self.calibration.ipc_local_s)
        dest_host = message.dest.home_host
        if dest_host is self.host:
            yield message.dest.enqueue(message)
        else:
            if self.host.nms is None:
                raise KernelError(
                    f"{self.host.name} has no NetMsgServer but "
                    f"{message.dest!r} is remote"
                )
            yield from self.host.nms.ship(message, dest_host)

    def post(self, message):
        """Fire-and-forget send; returns the background Process.

        Nobody waits on an asynchronous send, so an injected-fault
        delivery failure is counted rather than raised — a backer
        whose reply cannot reach a dead peer must not take its whole
        world down with it.
        """

        def background():
            try:
                yield from self.send(message)
            except TransportError:
                self.host.metrics.obs.registry.counter(
                    "async_send_failures_total", labels=("host",)
                ).inc(1, host=self.host.name)

        return self.engine.process(background(), name=f"send-{message.op}")

    def _account_transfer(self, message):
        """Fitzgerald accounting: mapped vs physically copied bytes."""
        threshold = self.calibration.cow_threshold_bytes
        for section in message.sections:
            if isinstance(section, RegionSection):
                if section.byte_size > threshold:
                    self.stats.mapped_bytes += section.byte_size
                    section.share_pages()
                else:
                    self.stats.copied_bytes += section.byte_size
                    section.pages = {
                        index: page.fork_copy()
                        for index, page in section.pages.items()
                    }
            elif isinstance(section, InlineSection):
                self.stats.copied_bytes += len(section.payload)

    # -- ExciseProcess (paper §3.1) ------------------------------------------------
    def excise_process(self, name):
        """Generator → (core_message, rimas_message).

        Removes the process from this host.  The Core message carries
        the microstate, kernel stack, PCB, port rights and the full
        AMap; the RIMAS message carries every real page plus IOUs for
        memory the process itself still held imaginary.
        """
        process = self.lookup(name)
        space = process.space
        calibration = self.calibration
        metrics = self.host.metrics

        # Trap entry, port-right bookkeeping, microstate capture.
        yield self.engine.timeout(calibration.excise_fixed_s)

        # Phase 1: AMap construction (expensive: complex process maps
        # plus lazy-update table searches, §4.3.1).
        metrics.mark("excise.amap.start")
        yield self.engine.timeout(
            calibration.excise_amap_s(process.map_entries)
        )
        amap = space.amap()
        metrics.mark("excise.amap.end")

        # Phase 2: collapse of process memory into a contiguous chunk,
        # delivered by memory-mapping (cost scales with run count).
        real_runs = space.real_runs()
        metrics.mark("excise.rimas.start")
        yield self.engine.timeout(calibration.excise_rimas_s(len(real_runs)))
        metrics.mark("excise.rimas.end")

        core = Message(
            dest=None,
            op="migrate.core",
            sections=[
                InlineSection(
                    process.microstate + process.kernel_stack + process.pcb,
                    label="core-context",
                ),
                RightsSection(process.port_rights),
                AMapSection(amap),
            ],
            no_ious=True,
            meta={
                "process_name": process.name,
                "blueprint": process.blueprint,
                "map_entries": process.map_entries,
                "real_runs": len(real_runs),
            },
        )

        resident = space.resident_page_indices()
        pages = {
            index: space.page_table[index].page
            for index in space.real_page_indices()
        }
        sections = [RegionSection(pages, label="rimas")]
        sections.extend(self._owed_sections(space))
        rimas = Message(
            dest=None,
            op="migrate.rimas",
            sections=sections,
            meta={
                "process_name": process.name,
                "resident_indices": resident,
                # Reference recency per page: what a Denning working-set
                # estimator needs (extension of the paper's §4.2.2).
                "last_touch": {
                    index: space.page_table[index].last_touch
                    for index in space.real_page_indices()
                },
                "excised_at": self.engine.now,
            },
        )

        # The process ceases to exist at this host (§3.1).
        process.status = ProcessStatus.EXCISED
        process.host = None
        del self.processes[process.name]
        self.host.physical.release_space(space.space_id)
        self.host.disk.drop_space(space.space_id)
        self.host.unregister_space(space)
        return core, rimas

    @staticmethod
    def _owed_sections(space):
        """IOU sections for pages the space itself still held imaginary
        (e.g. a process being migrated a second time)."""
        owed_by_handle = {}
        for run_start, run_end, value in space.regions.runs():
            if not isinstance(value, ImaginaryMapping):
                continue
            first = run_start // PAGE_SIZE
            last = (run_end - 1) // PAGE_SIZE
            for index in range(first, last + 1):
                if space.entry(index) is None:
                    owed_by_handle.setdefault(value.handle, []).append(index)
        return [
            IOUSection(handle, indices, label="inherited-iou")
            for handle, indices in owed_by_handle.items()
        ]

    # -- InsertProcess (paper §3.1) ---------------------------------------------
    def insert_process(self, core, rimas):
        """Generator → the reincarnated :class:`AccentProcess`.

        The two context messages are self-contained; no preprocessing is
        required.  The AMap guides address-space reconstruction, with
        the RIMAS data as ammunition.
        """
        amap_section = core.first_section(AMapSection)
        rights_section = core.first_section(RightsSection)
        if amap_section is None or rights_section is None:
            raise KernelError("malformed Core message")
        meta = core.meta
        name = meta["process_name"]

        yield self.engine.timeout(
            self.calibration.insert_s(meta["real_runs"], meta["map_entries"])
        )

        shipped = {}
        for section in rimas.sections_of(RegionSection):
            shipped.update(section.pages)
        owed = {}
        for section in rimas.sections_of(IOUSection):
            for index in section.page_indices:
                owed[index] = section.handle

        space = AddressSpace(name=name)
        # Register before rebuilding: bulk installation may evict pages
        # of this very space, and the eviction path resolves victims
        # through the host's space registry.
        self.host.register_space(space)
        self._rebuild_space(space, amap_section.amap, shipped, owed)

        core_payload = core.first_section(InlineSection).payload
        process = AccentProcess(
            name=name,
            space=space,
            port_rights=rights_section.rights,
            map_entries=meta["map_entries"],
            microstate=core_payload[:256],
            kernel_stack=core_payload[256:768],
            pcb=core_payload[768:],
            blueprint=meta.get("blueprint"),
        )
        self.register(process)
        return process

    def _rebuild_space(self, space, amap, shipped, owed):
        """Reconstruct regions and pages per the AMap."""
        for run in amap.runs():
            if run.accessibility is REAL_ZERO_MEM:
                space.validate(run.start, run.end - run.start)
            elif run.accessibility is REAL_MEM:
                self._rebuild_real_run(space, run, shipped, owed)
            else:  # IMAG_MEM: memory the source itself held imaginary
                self._rebuild_owed_run(space, run, owed)

    def _rebuild_real_run(self, space, run, shipped, owed):
        first = run.start // PAGE_SIZE
        last = (run.end - 1) // PAGE_SIZE
        # Split the run into maximal shipped / owed subruns.
        subrun = []
        mode = None
        for index in range(first, last + 1):
            if index in shipped:
                page_mode = "shipped"
            elif index in owed:
                page_mode = ("owed", owed[index])
            else:
                raise KernelError(
                    f"RIMAS lost page {index}: neither shipped nor owed"
                )
            if page_mode != mode and subrun:
                self._apply_subrun(space, subrun, mode, shipped)
                subrun = []
            mode = page_mode
            subrun.append(index)
        if subrun:
            self._apply_subrun(space, subrun, mode, shipped)

    def _apply_subrun(self, space, indices, mode, shipped):
        start = indices[0] * PAGE_SIZE
        size = len(indices) * PAGE_SIZE
        if mode == "shipped":
            space.validate(start, size)
            for index in indices:
                self._install_bulk(space, index, shipped[index])
        else:
            _, handle = mode
            space.map_imaginary(start, size, handle)

    def _rebuild_owed_run(self, space, run, owed):
        first = run.start // PAGE_SIZE
        last = (run.end - 1) // PAGE_SIZE
        handle = None
        run_pages = []
        for index in range(first, last + 1):
            page_handle = owed.get(index)
            if page_handle is None:
                raise KernelError(f"imaginary page {index} has no IOU")
            if page_handle is not handle and run_pages:
                self._map_owed(space, run_pages, handle)
                run_pages = []
            handle = page_handle
            run_pages.append(index)
        if run_pages:
            self._map_owed(space, run_pages, handle)

    @staticmethod
    def _map_owed(space, indices, handle):
        space.map_imaginary(
            indices[0] * PAGE_SIZE, len(indices) * PAGE_SIZE, handle
        )

    def _install_bulk(self, space, index, page):
        """Frame-install for bulk insertion (no per-page fault cost).

        With the default generous frame pool insertion never evicts; if
        a tiny pool is configured the victim is moved to disk instantly
        (insertion cost is already charged as a lump by insert_s).
        """
        victim = self.host.physical.allocate((space.space_id, index))
        if victim is not None:
            victim_space_id, victim_index = victim
            victim_space = self.host.space_by_id(victim_space_id)
            entry = victim_space.entry(victim_index)
            self.host.disk.store_instant(
                victim_space_id, victim_index, entry.page
            )
            victim_space.set_residency(victim_index, Residency.ON_DISK)
        space.install_page(index, page, Residency.RESIDENT)

    # -- termination -----------------------------------------------------------
    def terminate(self, name):
        """Generator: end a process, notifying imaginary backers.

        Sends an Imaginary Segment Death message to every backing port
        the space still references (paper §2.2).
        """
        process = self.lookup(name)
        space = process.space
        handles = set()
        for _, _, value in space.regions.runs():
            if isinstance(value, ImaginaryMapping):
                handles.add(value.handle)
        for handle in sorted(handles, key=lambda h: h.segment_id):
            self.post(
                Message(
                    dest=handle.backing_port,
                    op=OP_IMAG_DEATH,
                    sections=[InlineSection(bytes(8))],
                    meta={"segment_id": handle.segment_id},
                )
            )
        process.status = ProcessStatus.TERMINATED
        process.host = None
        del self.processes[name]
        self.host.physical.release_space(space.space_id)
        self.host.disk.drop_space(space.space_id)
        self.host.unregister_space(space)
        yield self.engine.timeout(self.calibration.ipc_local_s)

    def kill(self, process):
        """Destroy a process whose residual dependencies broke.

        Unlike :meth:`terminate`, no Imaginary Segment Death messages
        go out — the interesting backer is dead (that is why we are
        here), and the survivors' segments are reclaimed when the
        world ends.  Purely local, instantaneous teardown.
        """
        process.status = ProcessStatus.KILLED
        process.host = None
        self.processes.pop(process.name, None)
        space = process.space
        self.host.physical.release_space(space.space_id)
        self.host.disk.drop_space(space.space_id)
        self.host.unregister_space(space)
