"""Accent process contexts.

A context has five components (paper §3.1): the Perq microengine state,
the kernel stack (when in supervisor mode), the PCB, the set of port
rights, and the virtual address space.  The first four together are
roughly one kilobyte; the address space can reach four gigabytes — which
is the whole story of the paper.
"""

import enum
from itertools import count

_process_serial = count(1)

#: Wire sizes of the small context pieces (≈1 KB combined, §3.1).
MICROSTATE_BYTES = 256
KERNEL_STACK_BYTES = 512
PCB_BYTES = 256


class ProcessStatus(enum.Enum):
    RUNNABLE = "runnable"
    BLOCKED = "blocked"
    EXCISED = "excised"
    TERMINATED = "terminated"
    #: Destroyed by a broken residual dependency: an owed page's
    #: backing host died, so the process can never be made whole.
    KILLED = "killed"


class AccentProcess:
    """One process: the migratable unit."""

    def __init__(
        self,
        name,
        space,
        port_rights=(),
        map_entries=0,
        microstate=None,
        kernel_stack=None,
        pcb=None,
        blueprint=None,
    ):
        self.serial = next(_process_serial)
        self.name = name
        self.space = space
        self.port_rights = list(port_rights)
        #: Process-map complexity: entries in the kernel's (simulated)
        #: sparse map for this space.  Drives AMap-construction cost
        #: (paper §4.3.1: complex maps + lazy updates make AMap
        #: construction expensive, especially for Lisp).
        self.map_entries = map_entries
        self.microstate = microstate or bytes(MICROSTATE_BYTES)
        self.kernel_stack = kernel_stack or bytes(KERNEL_STACK_BYTES)
        self.pcb = pcb or bytes(PCB_BYTES)
        #: Name of the workload blueprint that built this process, if
        #: any; carried in the Core message so the destination can
        #: resume the right program.
        self.blueprint = blueprint
        self.status = ProcessStatus.RUNNABLE
        #: The host currently running the process (set by the kernel).
        self.host = None

    def __repr__(self):
        host = getattr(self.host, "name", None)
        return f"<AccentProcess {self.name} {self.status.value} host={host}>"

    @property
    def core_context_bytes(self):
        """Size of the non-address-space context pieces."""
        return (
            len(self.microstate) + len(self.kernel_stack) + len(self.pcb)
        )

    def rights_for(self, kind):
        """This process's rights of one kind."""
        return [right for right in self.port_rights if right.kind is kind]
