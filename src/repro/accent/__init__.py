"""The Accent operating-system substrate.

Accent (the SPICE kernel at CMU, ancestor of Mach) integrates IPC and
virtual memory: messages conceptually copy data by value, but the kernel
uses copy-on-write mapping above a size threshold; files are mapped into
memory; and *imaginary segments* let any server back memory regions
through IPC — the foundation of the paper's copy-on-reference facility.

Subpackages / modules
---------------------
``repro.accent.vm``
    Pages, physical memory, sparse address spaces, accessibility maps.
``repro.accent.ipc``
    Ports, rights, messages and the kernel transfer path.
``repro.accent.disk``
    The local paging disk.
``repro.accent.pager``
    The Pager/Scheduler server that resolves page faults.
``repro.accent.kernel``
    Process table, fault entry point, Excise/Insert traps.
``repro.accent.host``
    One simulated machine: kernel + pager + disk + network attachment.
``repro.accent.process``
    Accent process contexts (microstate, PCB, port rights, address space).
"""

from repro.accent.constants import PAGE_SIZE, SPACE_LIMIT

__all__ = ["PAGE_SIZE", "SPACE_LIMIT"]
