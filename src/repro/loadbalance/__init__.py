"""Automatic migration strategies and load metrics (paper §6).

The paper's future-work section asks for "automatic migration
strategies appropriate for such systems" and "good load metrics which
specifically take into account the fact that a process virtual address
space may be physically dispersed among several computational hosts".
This package supplies both:

* :mod:`repro.loadbalance.metrics` — a per-host load snapshot that
  counts runnable jobs, CPU queueing *and* the pages a host still backs
  for processes that have moved away.
* :mod:`repro.loadbalance.policy` — pluggable policies, including a
  breakeven-aware one that picks pure-IOU or pure-copy per process
  using the paper's ~25%-of-RealMem crossover.
* :mod:`repro.loadbalance.balancer` — the balancer server plus a
  scenario runner that launches a job mix on one host and measures the
  makespan with and without automatic migration.
"""

from repro.loadbalance.balancer import LoadBalancer, Scenario, ScenarioResult
from repro.loadbalance.job import ManagedJob
from repro.loadbalance.metrics import HostLoad, snapshot_loads
from repro.loadbalance.policy import (
    BreakevenPolicy,
    EagerCopyPolicy,
    MigrationDecision,
    NoMigrationPolicy,
)

__all__ = [
    "BreakevenPolicy",
    "EagerCopyPolicy",
    "HostLoad",
    "LoadBalancer",
    "ManagedJob",
    "MigrationDecision",
    "NoMigrationPolicy",
    "Scenario",
    "ScenarioResult",
    "snapshot_loads",
]
