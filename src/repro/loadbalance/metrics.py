"""Load metrics aware of dispersed address spaces (§6)."""

from dataclasses import dataclass


@dataclass(frozen=True)
class HostLoad:
    """One host's load at a sampling instant."""

    host_name: str
    #: Jobs currently executing on this host.
    running_jobs: int
    #: Processes queued for the CPU right now.
    cpu_queue: int
    #: Pages this host still backs for processes running elsewhere —
    #: remote faults will keep landing here (the dispersal term the
    #: paper says load metrics must include).
    backed_pages: int

    @property
    def score(self):
        """Scalar load: jobs dominate; queueing and backing duty add a
        fractional burden (a host backing thousands of owed pages is
        not actually idle)."""
        return (
            self.running_jobs
            + 0.5 * self.cpu_queue
            + self.backed_pages / 4096.0
        )


def snapshot_loads(hosts, jobs):
    """Sample every host; returns {host_name: HostLoad}.

    ``jobs`` are :class:`~repro.loadbalance.job.ManagedJob` instances;
    a job counts against the host it currently runs on.
    """
    running = {}
    for job in jobs:
        if job.current_host is not None and not job.finished:
            running[job.current_host.name] = (
                running.get(job.current_host.name, 0) + 1
            )
    loads = {}
    for name, host in hosts.items():
        backed = sum(
            len(segment.owed)
            for segment in host.nms.backing.segments.values()
        )
        loads[name] = HostLoad(
            host_name=name,
            running_jobs=running.get(name, 0),
            cpu_queue=host.cpu.queued,
            backed_pages=backed,
        )
    return loads
