"""Load metrics aware of dispersed address spaces (§6)."""

from dataclasses import dataclass


@dataclass(frozen=True)
class HostLoad:
    """One host's load at a sampling instant."""

    host_name: str
    #: Jobs currently executing on this host.
    running_jobs: int
    #: Processes queued for the CPU right now.
    cpu_queue: int
    #: Pages this host still backs for processes running elsewhere —
    #: remote faults will keep landing here (the dispersal term the
    #: paper says load metrics must include).
    backed_pages: int
    #: Aggregate request throughput of serving jobs on this host
    #: (requests per simulated second; 0.0 for batch jobs).  An
    #: *optional* policy signal — deliberately not in :attr:`score`, so
    #: existing policies decide exactly as before; a latency-aware
    #: policy can weigh it explicitly.
    requests_per_s: float = 0.0

    @property
    def score(self):
        """Scalar load: jobs dominate; queueing and backing duty add a
        fractional burden (a host backing thousands of owed pages is
        not actually idle)."""
        return (
            self.running_jobs
            + 0.5 * self.cpu_queue
            + self.backed_pages / 4096.0
        )


def snapshot_loads(hosts, jobs):
    """Sample every host; returns {host_name: HostLoad}.

    ``jobs`` are :class:`~repro.loadbalance.job.ManagedJob` (or
    :class:`~repro.serve.server.ServingJob`) instances; a job counts
    against the host it currently runs on, and any per-job
    ``requests_per_s`` it exposes aggregates into the host's serving
    load.
    """
    running = {}
    request_rates = {}
    for job in jobs:
        if job.current_host is not None and not job.finished:
            host_name = job.current_host.name
            running[host_name] = running.get(host_name, 0) + 1
            rate = getattr(job, "requests_per_s", 0.0)
            if rate:
                request_rates[host_name] = (
                    request_rates.get(host_name, 0.0) + rate
                )
    loads = {}
    for name, host in hosts.items():
        backed = sum(
            len(segment.owed)
            for segment in host.nms.backing.segments.values()
        )
        loads[name] = HostLoad(
            host_name=name,
            running_jobs=running.get(name, 0),
            cpu_queue=host.cpu.queued,
            backed_pages=backed,
            requests_per_s=request_rates.get(name, 0.0),
        )
    return loads
