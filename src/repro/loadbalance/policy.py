"""Migration policies.

A policy looks at the load snapshot and the job population and either
returns a :class:`MigrationDecision` or ``None``.  The interesting one
is :class:`BreakevenPolicy`, which operationalises the paper's §4.3.4
finding: pure-IOU wins end-to-end while the process will touch less
than about a quarter of its real memory; beyond that, pure-copy — and
sequential programs should ask their backer for deep prefetch.
"""

from dataclasses import dataclass

from repro.migration.strategy import PURE_COPY, PURE_IOU, WORKING_SET
from repro.workloads.spec import Locality


@dataclass(frozen=True)
class MigrationDecision:
    """One act of rebalancing."""

    job_name: str
    source: str
    dest: str
    strategy: str
    prefetch: int

    def __str__(self):
        return (
            f"{self.job_name}: {self.source} -> {self.dest} "
            f"[{self.strategy}, pf={self.prefetch}]"
        )


class NoMigrationPolicy:
    """Baseline: never migrate."""

    name = "no-migration"

    def decide(self, loads, jobs):
        """Always None: the do-nothing baseline."""
        return None


class _ImbalancePolicy:
    """Shared logic: find an imbalance and a movable job."""

    #: Minimum load-score gap before moving anything.
    gap = 1.5

    def decide(self, loads, jobs):
        if len(loads) < 2:
            return None
        busiest = max(loads.values(), key=lambda load: load.score)
        idlest = min(loads.values(), key=lambda load: load.score)
        if busiest.score - idlest.score < self.gap:
            return None
        candidates = [
            job
            for job in jobs
            if not job.finished
            and not getattr(job, "migrating", False)
            and job.current_host is not None
            and job.current_host.name == busiest.host_name
            and job.remaining_steps > 0
        ]
        if len(candidates) < 2:
            # Don't strip the busiest host of its only job.
            return None
        job = self.pick_job(candidates)
        strategy, prefetch = self.pick_strategy(job)
        return MigrationDecision(
            job_name=job.name,
            source=busiest.host_name,
            dest=idlest.host_name,
            strategy=strategy,
            prefetch=prefetch,
        )

    def pick_job(self, candidates):
        """Choose which candidate job to move."""
        raise NotImplementedError

    def pick_strategy(self, job):
        """Choose (strategy name, prefetch) for the chosen job."""
        raise NotImplementedError


class EagerCopyPolicy(_ImbalancePolicy):
    """Naive: always pure-copy, move the job with the most work left."""

    name = "eager-copy"

    def pick_job(self, candidates):
        return max(candidates, key=lambda job: job.remaining_steps)

    def pick_strategy(self, job):
        return PURE_COPY, 0


class BreakevenPolicy(_ImbalancePolicy):
    """The paper-informed policy.

    * Job choice: most remaining work (the move buys the most overlap),
      ties broken toward the smallest real memory (cheapest to move).
    * Strategy: pure-IOU if the job will touch under ~25% of its real
      memory at the new site, else pure-copy (§4.3.4's breakeven).
    * Prefetch: deep (7) for sequential access patterns, shallow (1)
      otherwise — one page always helps, more only with locality
      (§4.3.3/§4.4.2).
    """

    name = "breakeven-lazy"

    def __init__(self, breakeven=0.25, use_working_set=False):
        self.breakeven = breakeven
        #: Above the breakeven, ship the kernel-tracked working set
        #: (hot pages pre-shipped, cold ones owed) instead of the whole
        #: real memory — the WS-strategy extension applied to policy.
        self.use_working_set = use_working_set
        if use_working_set:
            self.name = "breakeven-ws"

    def pick_job(self, candidates):
        return max(
            candidates,
            key=lambda job: (job.remaining_steps, -job.spec.real_pages),
        )

    def pick_strategy(self, job):
        expected_fraction = job.remaining_touched_pages / job.spec.real_pages
        if expected_fraction < self.breakeven:
            strategy = PURE_IOU
        elif self.use_working_set:
            strategy = WORKING_SET
        else:
            strategy = PURE_COPY
        prefetch = 7 if job.spec.locality is Locality.SEQUENTIAL else 1
        if strategy == PURE_COPY:
            prefetch = 0
        return strategy, prefetch
