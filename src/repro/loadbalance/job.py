"""Managed, migratable jobs.

A :class:`ManagedJob` owns a workload's execution lifecycle across
migrations: it runs the reference trace step by step, pauses
cooperatively when the balancer asks (so no fault protocol is ever
abandoned mid-flight), and resumes from the same trace position in the
re-incarnated process at the new host — verifying page contents the
whole way.
"""

from repro.accent.constants import PAGE_SIZE
from repro.workloads.content import WRITE_MARKER, page_head
from repro.workloads.runner import RemoteRunResult


class ManagedJob:
    """One workload instance under balancer control."""

    def __init__(self, world, built, name=None):
        self.world = world
        self.built = built
        self.spec = built.spec
        self.name = name or built.process.name
        self.result = RemoteRunResult(self.name)
        self.steps = list(built.trace.steps)
        self.compute_slice_s = built.trace.compute_slice_s
        self.position = 0
        self.current_host = None
        self.process = built.process
        self.finished = False
        self.finished_at = None
        self.migrations = 0
        #: True while a scheduler-managed move is queued or in flight
        #: (keeps the policy from re-picking a job already on the move).
        self.migrating = False
        self._pause_requested = False
        self._paused_event = None
        self._body = None
        #: Fires when the job completes.
        self.done = world.engine.event()

    def __repr__(self):
        state = "done" if self.finished else f"at {self.position}/{len(self.steps)}"
        host = self.current_host.name if self.current_host else "-"
        return f"<ManagedJob {self.name} {state} on {host}>"

    #: Batch jobs serve no requests; the attribute exists so load
    #: snapshots can read a uniform serving-load signal across managed
    #: and serving jobs (see repro.serve.server.ServingJob).
    requests_per_s = 0.0

    @property
    def remaining_steps(self):
        return len(self.steps) - self.position

    @property
    def remaining_touched_pages(self):
        """Distinct real pages still to be referenced (policy input)."""
        return len(
            {
                step.page_index
                for step in self.steps[self.position:]
                if step.kind == "real"
            }
        )

    # -- lifecycle ------------------------------------------------------------
    def start(self, host):
        """Begin (or resume) execution on ``host``."""
        if self.finished:
            raise RuntimeError(f"{self.name} already finished")
        self.current_host = host
        self._pause_requested = False
        self._body = self.world.engine.process(
            self._run(host), name=f"job-{self.name}"
        )
        return self._body

    def request_pause(self):
        """Ask the job to stop at the next step boundary.

        Returns an event that fires once the job is quiescent (safe to
        excise).  If the job finishes before reaching a boundary the
        event fires too — check :attr:`finished` afterwards.
        """
        if self._paused_event is None or self._paused_event.processed:
            self._paused_event = self.world.engine.event()
        self._pause_requested = True
        if self.finished and not self._paused_event.triggered:
            # Already quiescent forever; don't strand the waiter.
            self._paused_event.succeed(self)
        return self._paused_event

    def resume_as(self, process, host):
        """Continue in the re-incarnated process after a migration."""
        self.process = process
        self.migrations += 1
        return self.start(host)

    # -- body -----------------------------------------------------------------
    def _run(self, host):
        engine = self.world.engine
        kernel = host.kernel
        expected_name = self.spec.name
        head_len = len(page_head(expected_name, 0))
        if self.result.started_at is None:
            self.result.started_at = engine.now
        # One exec span per incarnation: residual-fault traffic this job
        # raises while running lands on its own root, not on whatever
        # migration happens to be in flight at the same instant.
        obs = self.world.obs
        exec_span = obs.tracer.span(
            "exec", process=self.name, host=host.name
        )
        obs.push_phase(exec_span)
        try:
            # Loop-invariant bindings: the step list, slice length and
            # process identity are fixed for the whole incarnation (a
            # migration ends this generator and starts a fresh one), so
            # only the externally-written pause flag and position are
            # re-read through ``self`` each step.
            steps = self.steps
            nsteps = len(steps)
            compute_slice = self.compute_slice_s
            cpu = host.cpu
            timeout = engine.timeout
            touch = kernel.touch
            process = self.process
            space = process.space
            result = self.result
            while self.position < nsteps:
                if self._pause_requested:
                    self._signal_paused()
                    return "paused"
                step = steps[self.position]
                if compute_slice > 0:
                    grant = cpu.request()
                    try:
                        yield grant
                        yield timeout(compute_slice)
                    finally:
                        cpu.release(grant)
                cost = touch(process, step.page_index, write=step.write)
                if cost is not None:
                    yield from cost
                address = step.page_index * PAGE_SIZE
                if step.kind == "real":
                    actual = space.peek(address, head_len)
                    expected = page_head(expected_name, step.page_index)
                    if actual != expected and not actual.startswith(
                        WRITE_MARKER
                    ):
                        result.mismatches.append(
                            (step.page_index, expected, actual)
                        )
                if step.write:
                    space.poke(address, WRITE_MARKER)
                result.steps_executed += 1
                self.position += 1

            yield from kernel.terminate(self.process.name)
        finally:
            exec_span.finish()
            obs.pop_phase(exec_span)
        self.finished = True
        self.finished_at = engine.now
        self.result.finished_at = engine.now
        self._signal_paused()
        self.done.succeed(self)
        return "finished"

    def _signal_paused(self):
        if self._paused_event is not None and not self._paused_event.triggered:
            self._paused_event.succeed(self)
