"""The balancer server and the job-mix scenario runner."""

from repro.loadbalance.job import ManagedJob
from repro.loadbalance.metrics import snapshot_loads
from repro.loadbalance.policy import NoMigrationPolicy
from repro.migration.plan import TransferOptions
from repro.testbed import Testbed
from repro.workloads.builder import build_process
from repro.workloads.registry import workload_by_name


class LoadBalancer:
    """Periodically samples loads and executes the policy's decisions.

    Without a scheduler one migration is in flight at a time: the job
    is paused at a step boundary (no fault abandoned mid-protocol),
    excised, shipped under the policy-chosen strategy, and resumed in
    its new incarnation.  With a
    :class:`~repro.cluster.scheduler.ClusterScheduler` attached, each
    decision is *submitted* instead and the sampling loop keeps
    running — overlapping moves proceed up to the scheduler's per-host
    in-flight cap, and jobs already on the move are marked
    ``migrating`` so the policy skips them.
    """

    def __init__(self, world, jobs, policy, interval_s=4.0, scheduler=None,
                 options=None):
        self.world = world
        self.jobs = list(jobs)
        self.policy = policy
        self.interval_s = interval_s
        #: Optional ClusterScheduler enabling concurrent moves.
        self.scheduler = scheduler
        #: Scenario-wide :class:`TransferOptions`, or None.  When set,
        #: the knob trio is pinned for the whole run and the per-move
        #: ``decision.prefetch`` override is skipped; when None each
        #: decision installs its own prefetch, as before the knobs
        #: existed.
        self.options = options
        #: Executed decisions, in order of completion.
        self.log = []
        self._server = world.engine.process(self._loop(), name="balancer")

    def _loop(self):
        engine = self.world.engine
        while any(not job.finished for job in self.jobs):
            yield engine.timeout(self.interval_s)
            loads = snapshot_loads(self.world.hosts, self.jobs)
            decision = self.policy.decide(loads, self.jobs)
            if decision is None:
                continue
            if self.scheduler is None:
                yield from self._execute(decision)
            else:
                self._submit(decision)

    def _execute(self, decision):
        world = self.world
        job = next(j for j in self.jobs if j.name == decision.job_name)
        paused = job.request_pause()
        yield paused
        if job.finished:
            return  # it beat us to the finish line
        if self.options is None:
            for host in world.hosts.values():
                host.nms.prefetch = decision.prefetch
        source_manager = world.manager(decision.source)
        dest_manager = world.manager(decision.dest)
        insertion = dest_manager.expect_insertion(job.name)
        yield from source_manager.migrate(
            job.name, dest_manager, decision.strategy
        )
        inserted = yield insertion
        job.resume_as(inserted, world.host(decision.dest))
        self.log.append(decision)

    def _submit(self, decision):
        """Hand the decision to the scheduler; don't block the loop."""
        world = self.world
        job = next(j for j in self.jobs if j.name == decision.job_name)
        if self.options is None:
            for host in world.hosts.values():
                host.nms.prefetch = decision.prefetch
        ticket = self.scheduler.submit(
            job.name,
            decision.dest,
            source=decision.source,
            strategy=decision.strategy,
            prepare=job.request_pause,
        )
        if ticket.outcome is not None:
            return  # rejected outright; the job never paused
        job.migrating = True
        world.engine.process(
            self._finish_move(decision, job, ticket),
            name=f"move-{job.name}",
        )

    def _finish_move(self, decision, job, ticket):
        yield ticket.done
        job.migrating = False
        if ticket.outcome == "completed":
            job.resume_as(ticket.inserted, self.world.host(ticket.dest))
            self.log.append(decision)
        elif ticket.outcome == "aborted" and not job.finished:
            # Rolled back: pick up the reincarnation at the source.
            process = self.world.host(ticket.source).kernel.processes.get(
                job.name
            )
            if process is not None:
                job.process = process
                job.start(self.world.host(ticket.source))


class ScenarioResult:
    """Outcome of one job-mix run."""

    def __init__(self, policy_name, jobs, log, makespan_s, obs=None,
                 scheduler=None):
        self.policy_name = policy_name
        self.obs = obs
        #: The ClusterScheduler, when the run used concurrent moves.
        self.scheduler = scheduler
        self.makespan_s = makespan_s
        self.migrations = list(log)
        self.finish_times = {job.name: job.finished_at for job in jobs}
        self.verified = all(
            job.result.verified for job in jobs if job.result.steps_executed
        )
        self.steps_executed = sum(job.result.steps_executed for job in jobs)

    def __repr__(self):
        return (
            f"<ScenarioResult {self.policy_name} makespan={self.makespan_s:.1f}s "
            f"migrations={len(self.migrations)} verified={self.verified}>"
        )


class Scenario:
    """A job mix launched on one host of an N-host testbed.

    ``Scenario(["chess", "pm-mid", "pm-mid"], hosts=3).run(policy)``
    starts every job on the first host and lets the policy spread them.
    """

    def __init__(self, workloads, hosts=3, seed=1987, calibration=None,
                 interval_s=4.0, instrument=False, faults=None, options=None,
                 sample_period=0.0, slos=()):
        self.workload_names = list(workloads)
        self.host_names = tuple(f"node{i}" for i in range(hosts))
        self.seed = seed
        self.calibration = calibration
        self.interval_s = interval_s
        self.instrument = instrument
        #: Optional FaultPlan applied to the scenario's world.
        self.faults = faults
        #: Optional scenario-wide transfer knobs (TransferOptions or
        #: dict); None keeps the legacy per-decision prefetch override.
        self.options = (
            None if options is None else TransferOptions.coerce(options)
        )
        #: Continuous-telemetry cadence (0 = off) and SLO objectives.
        self.sample_period = sample_period
        self.slos = tuple(slos)

    def run(self, policy=None, inflight_cap=None):
        """Execute the scenario under ``policy``; returns a ScenarioResult.

        ``inflight_cap`` switches the balancer to concurrent mode: a
        :class:`~repro.cluster.scheduler.ClusterScheduler` with that
        per-host cap admits overlapping moves instead of serializing
        them.
        """
        policy = policy or NoMigrationPolicy()
        bed = Testbed(
            seed=self.seed, calibration=self.calibration,
            instrument=self.instrument, faults=self.faults,
            sample_period=self.sample_period, slos=self.slos,
        )
        world = bed.world(host_names=self.host_names)
        if self.options is not None:
            world.apply_options(self.options)
        origin = world.host(self.host_names[0])

        jobs = []
        for index, workload in enumerate(self.workload_names):
            spec = workload_by_name(workload)
            built = build_process(
                origin, spec, world.streams, name=f"{spec.name}#{index}"
            )
            jobs.append(ManagedJob(world, built))

        for job in jobs:
            job.start(origin)
        scheduler = None
        if inflight_cap is not None:
            from repro.cluster.scheduler import ClusterScheduler

            scheduler = ClusterScheduler(world, inflight_cap=inflight_cap)
        balancer = LoadBalancer(
            world, jobs, policy, interval_s=self.interval_s,
            scheduler=scheduler, options=self.options,
        )

        all_done = world.engine.all_of([job.done for job in jobs])
        world.engine.run(until=all_done)
        makespan = world.engine.now
        if scheduler is not None:
            # Tickets for jobs that finished just before their pause
            # still need to resolve (as "skipped") before the world is
            # quiet.
            world.engine.run(until=scheduler.drain())
        world.stop_telemetry()
        world.engine.run()  # drain death messages etc.
        return ScenarioResult(
            getattr(policy, "name", type(policy).__name__),
            jobs,
            balancer.log,
            makespan,
            obs=world.obs,
            scheduler=scheduler,
        )
