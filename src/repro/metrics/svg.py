"""Minimal SVG chart rendering (no plotting dependency exists offline).

Two chart shapes cover every figure in the paper:

* :func:`grouped_bars` — Figures 4-1/4-2/4-3/4-4: one group of bars per
  workload, one bar per strategy × prefetch.
* :func:`rate_timeline` — Figure 4-5: stacked byte-rate areas over
  time, fault-support traffic drawn in white with an outline (as in
  the paper) over the bulk traffic in black.

Charts are deliberately spartan — axis, ticks, labels, data — and emit
self-contained SVG strings suitable for writing straight to disk.
"""

import math
from xml.sax.saxutils import escape

#: A small qualitative palette (first entry is used for pure-copy).
PALETTE = (
    "#444444",
    "#1f77b4",
    "#ff7f0e",
    "#2ca02c",
    "#d62728",
    "#9467bd",
    "#8c564b",
    "#e377c2",
    "#7f7f7f",
    "#bcbd22",
    "#17becf",
)


class SvgCanvas:
    """Accumulates SVG elements with a fixed viewport.

    ``background=None`` omits the backing rect entirely — the mode the
    health dashboard uses so inline SVG inherits the page surface (and
    its dark variant) instead of forcing white.
    """

    def __init__(self, width, height, background="white"):
        self.width = width
        self.height = height
        self.background = background
        self._parts = []

    def rect(self, x, y, w, h, fill, stroke=None, stroke_width=1):
        """Add a rectangle."""
        stroke_attr = (
            f' stroke="{stroke}" stroke-width="{stroke_width}"' if stroke else ""
        )
        self._parts.append(
            f'<rect x="{x:.2f}" y="{y:.2f}" width="{w:.2f}" '
            f'height="{h:.2f}" fill="{fill}"{stroke_attr}/>'
        )

    def line(self, x1, y1, x2, y2, stroke="#000", width=1):
        """Add a line segment."""
        self._parts.append(
            f'<line x1="{x1:.2f}" y1="{y1:.2f}" x2="{x2:.2f}" '
            f'y2="{y2:.2f}" stroke="{stroke}" stroke-width="{width}"/>'
        )

    def text(self, x, y, content, size=11, anchor="start", rotate=None,
             fill=None):
        """Add escaped text (``fill=None`` inherits SVG's default)."""
        transform = (
            f' transform="rotate({rotate} {x:.2f} {y:.2f})"' if rotate else ""
        )
        fill_attr = f' fill="{fill}"' if fill else ""
        self._parts.append(
            f'<text x="{x:.2f}" y="{y:.2f}" font-size="{size}" '
            f'font-family="sans-serif" text-anchor="{anchor}"'
            f"{transform}{fill_attr}>"
            f"{escape(str(content))}</text>"
        )

    def polyline(self, points, stroke, width=2, opacity=None, title=None):
        """Add an open path through ``points`` (``[(x, y), ...]``)."""
        if len(points) < 2:
            return
        coords = " ".join(f"{x:.2f},{y:.2f}" for x, y in points)
        opacity_attr = f' stroke-opacity="{opacity}"' if opacity else ""
        element = (
            f'<polyline points="{coords}" fill="none" stroke="{stroke}" '
            f'stroke-width="{width}" stroke-linejoin="round"{opacity_attr}/>'
        )
        if title:
            element = f"<g><title>{escape(str(title))}</title>{element}</g>"
        self._parts.append(element)

    def polygon(self, points, fill, opacity=None):
        """Add a closed filled region through ``points``."""
        if len(points) < 3:
            return
        coords = " ".join(f"{x:.2f},{y:.2f}" for x, y in points)
        opacity_attr = f' fill-opacity="{opacity}"' if opacity else ""
        self._parts.append(
            f'<polygon points="{coords}" fill="{fill}" '
            f'stroke="none"{opacity_attr}/>'
        )

    def circle(self, x, y, r, fill, title=None):
        """Add a dot, optionally with a native hover tooltip."""
        body = f"<title>{escape(str(title))}</title>" if title else ""
        self._parts.append(
            f'<g><circle cx="{x:.2f}" cy="{y:.2f}" r="{r:.2f}" '
            f'fill="{fill}"/>{body}</g>'
            if body else
            f'<circle cx="{x:.2f}" cy="{y:.2f}" r="{r:.2f}" fill="{fill}"/>'
        )

    def render(self):
        """The complete SVG document as a string."""
        body = "\n".join(self._parts)
        backing = (
            f'<rect width="{self.width}" height="{self.height}" '
            f'fill="{self.background}"/>\n'
            if self.background else ""
        )
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width}" height="{self.height}" '
            f'viewBox="0 0 {self.width} {self.height}">\n'
            f"{backing}{body}\n</svg>"
        )


def _ticks(limit, count=5):
    """Pleasant tick values for [0, limit]."""
    if limit <= 0:
        return [0]
    raw = limit / count
    magnitude = 10 ** max(0, len(str(int(raw))) - 1)
    step = max(1, round(raw / magnitude)) * magnitude
    values = []
    value = 0
    while value <= limit + 1e-9:
        values.append(value)
        value += step
    return values


def _fticks(limit, count=5):
    """Like :func:`_ticks` but with sub-integer steps for small axes
    (telemetry charts routinely span fractions of a second)."""
    if limit <= 0:
        return [0]
    if limit / count >= 1:
        return _ticks(limit, count)
    raw = limit / count
    magnitude = 10.0 ** math.floor(math.log10(raw))
    step = max(1, round(raw / magnitude)) * magnitude
    values = []
    value = 0.0
    while value <= limit + step * 1e-6:
        values.append(round(value, 12))
        value += step
    return values


def grouped_bars(
    groups,
    series_names,
    title="",
    y_label="",
    width=900,
    height=420,
    allow_negative=False,
):
    """Render grouped bars.

    ``groups`` is ``[(group_label, [v1, v2, ...]), ...]`` with one
    value per entry of ``series_names``.
    """
    margin_left, margin_bottom, margin_top = 70, 60, 40
    plot_w = width - margin_left - 20
    plot_h = height - margin_top - margin_bottom
    canvas = SvgCanvas(width, height)
    canvas.text(width / 2, 20, title, size=14, anchor="middle")
    canvas.text(16, margin_top - 10, y_label, size=11)

    values = [v for _, vs in groups for v in vs]
    top = max(values + [0.0]) or 1.0
    bottom = min(values + [0.0]) if allow_negative else 0.0
    span = (top - bottom) or 1.0

    def y_of(value):
        return margin_top + plot_h * (1 - (value - bottom) / span)

    zero_y = y_of(0.0)
    for tick in _ticks(top):
        canvas.line(margin_left - 4, y_of(tick), width - 20, y_of(tick),
                    stroke="#dddddd")
        canvas.text(margin_left - 8, y_of(tick) + 4, f"{tick:g}",
                    size=10, anchor="end")
    if allow_negative and bottom < 0:
        for tick in _ticks(-bottom):
            if tick == 0:
                continue
            canvas.line(margin_left - 4, y_of(-tick), width - 20, y_of(-tick),
                        stroke="#eeeeee")
            canvas.text(margin_left - 8, y_of(-tick) + 4, f"-{tick:g}",
                        size=10, anchor="end")

    group_w = plot_w / max(1, len(groups))
    bar_w = group_w * 0.8 / max(1, len(series_names))
    for g_index, (label, group_values) in enumerate(groups):
        x0 = margin_left + g_index * group_w + group_w * 0.1
        for s_index, value in enumerate(group_values):
            color = PALETTE[s_index % len(PALETTE)]
            x = x0 + s_index * bar_w
            y_top = min(y_of(value), zero_y)
            bar_h = abs(y_of(value) - zero_y)
            canvas.rect(x, y_top, bar_w * 0.92, max(0.5, bar_h), fill=color)
        canvas.text(
            margin_left + g_index * group_w + group_w / 2,
            height - margin_bottom + 16,
            label,
            size=10,
            anchor="middle",
        )
    canvas.line(margin_left, zero_y, width - 20, zero_y, stroke="#000")
    canvas.line(margin_left, margin_top, margin_left, margin_top + plot_h,
                stroke="#000")

    # Legend along the bottom.
    legend_x = margin_left
    legend_y = height - 14
    for s_index, name in enumerate(series_names):
        color = PALETTE[s_index % len(PALETTE)]
        canvas.rect(legend_x, legend_y - 9, 10, 10, fill=color)
        canvas.text(legend_x + 14, legend_y, name, size=10)
        legend_x += 14 + 7 * len(str(name)) + 16
    return canvas.render()


def line_chart(
    times,
    series,
    width=520,
    height=190,
    title="",
    y_label="",
    bands=(),
    band_fill="#d03b3b",
    ribbon=None,
    ink="#1a1a19",
    ink_muted="#6f6f6a",
    grid="#e3e3df",
    background=None,
    y_max=None,
):
    """Render a multi-series line chart over a shared time axis.

    ``series`` is ``[(name, values, color), ...]``; ``values`` aligns
    with ``times`` and may contain None gaps (the line breaks there).
    ``bands`` is ``[(t0, t1), ...]`` shaded x-ranges (SLO violations);
    ``ribbon`` is ``(low_name, high_name, fill)`` filling the region
    between two of the named series (percentile ribbons).  All colors
    are plain strings, so callers embedding the SVG in HTML can pass
    CSS custom properties (``var(--series-1)``) and let the page's
    light/dark theme resolve them.
    """
    margin_left, margin_bottom, margin_top = 52, 30, 26
    plot_w = width - margin_left - 14
    plot_h = height - margin_top - margin_bottom
    canvas = SvgCanvas(width, height, background=background)
    if title:
        canvas.text(margin_left, 15, title, size=12, fill=ink)

    finite = [
        value for _, values, _ in series for value in values
        if value is not None
    ]
    top = max([v for v in finite] + [0.0]) or 1.0
    if y_max is not None:
        top = max(top, y_max)
    t0 = times[0] if times else 0.0
    t1 = times[-1] if times else 1.0
    t_span = (t1 - t0) or 1.0

    def x_of(when):
        return margin_left + (when - t0) / t_span * plot_w

    def y_of(value):
        return margin_top + plot_h * (1 - value / top)

    base_y = margin_top + plot_h
    for band_start, band_end in bands:
        x_start = max(margin_left, x_of(band_start))
        x_end = min(margin_left + plot_w, x_of(band_end))
        if x_end > x_start:
            canvas.rect(x_start, margin_top, x_end - x_start, plot_h,
                        fill=band_fill)

    for tick in _fticks(top, count=4):
        y = y_of(tick)
        canvas.line(margin_left, y, margin_left + plot_w, y, stroke=grid,
                    width=0.5)
        canvas.text(margin_left - 6, y + 3, f"{tick:g}", size=9,
                    anchor="end", fill=ink_muted)
    for tick in _fticks(t1 - t0, count=5):
        canvas.text(x_of(t0 + tick), height - margin_bottom + 14,
                    f"{tick:g}s", size=9, anchor="middle", fill=ink_muted)
    if y_label:
        canvas.text(margin_left, margin_top - 6, y_label, size=9,
                    fill=ink_muted)

    by_name = {name: values for name, values, _ in series}
    if ribbon is not None:
        low_name, high_name, fill = ribbon
        low = by_name.get(low_name, ())
        high = by_name.get(high_name, ())
        upper, lower = [], []
        for index, when in enumerate(times):
            lo = low[index] if index < len(low) else None
            hi = high[index] if index < len(high) else None
            if lo is None or hi is None:
                continue
            upper.append((x_of(when), y_of(hi)))
            lower.append((x_of(when), y_of(lo)))
        canvas.polygon(upper + lower[::-1], fill=fill)

    for name, values, color in series:
        segment = []
        last_value = None
        for index, when in enumerate(times):
            value = values[index] if index < len(values) else None
            if value is None:
                canvas.polyline(segment, stroke=color, width=2, title=name)
                segment = []
                continue
            segment.append((x_of(when), y_of(value)))
            last_value = value
        canvas.polyline(segment, stroke=color, width=2, title=name)
        if len(segment) == 1:
            canvas.circle(segment[0][0], segment[0][1], 2.5, fill=color,
                          title=name)
        if last_value is not None and segment:
            canvas.circle(segment[-1][0], segment[-1][1], 2.0, fill=color,
                          title=f"{name}: {last_value:g}")

    canvas.line(margin_left, base_y, margin_left + plot_w, base_y,
                stroke=ink_muted, width=1)
    canvas.line(margin_left, margin_top, margin_left, base_y,
                stroke=ink_muted, width=1)

    if len(series) >= 2:
        legend_x = margin_left + 4
        legend_y = margin_top + 2
        for name, _, color in series:
            canvas.rect(legend_x, legend_y, 9, 3, fill=color)
            canvas.text(legend_x + 13, legend_y + 5, name, size=9,
                        fill=ink_muted)
            legend_x += 13 + 6 * len(str(name)) + 14
    return canvas.render()


def rate_timeline(
    series,
    title="",
    width=900,
    height=260,
    y_label="bytes/s",
):
    """Render Figure 4-5-style panels: ``[(t, fault_rate, other_rate)]``.

    Bulk traffic is black, fault-support traffic white with an outline,
    stacked, exactly as the paper draws them.
    """
    margin_left, margin_bottom, margin_top = 70, 40, 30
    plot_w = width - margin_left - 20
    plot_h = height - margin_top - margin_bottom
    canvas = SvgCanvas(width, height)
    canvas.text(width / 2, 18, title, size=13, anchor="middle")
    canvas.text(16, margin_top - 8, y_label, size=10)

    if not series:
        return canvas.render()
    peak = max(fault + other for _, fault, other in series) or 1.0
    t0 = series[0][0]
    t1 = series[-1][0]
    t_span = (t1 - t0) or 1.0
    bin_w = plot_w / len(series)

    base_y = margin_top + plot_h
    for when, fault, other in series:
        x = margin_left + (when - t0) / t_span * (plot_w - bin_w)
        other_h = plot_h * other / peak
        fault_h = plot_h * fault / peak
        if other_h > 0:
            canvas.rect(x, base_y - other_h, bin_w, other_h, fill="#111111")
        if fault_h > 0:
            canvas.rect(
                x,
                base_y - other_h - fault_h,
                bin_w,
                fault_h,
                fill="white",
                stroke="#111111",
                stroke_width=0.6,
            )
    canvas.line(margin_left, base_y, width - 20, base_y, stroke="#000")
    canvas.line(margin_left, margin_top, margin_left, base_y, stroke="#000")
    for tick in _ticks(peak, count=3):
        y = base_y - plot_h * tick / peak
        canvas.text(margin_left - 8, y + 4, f"{tick:,.0f}", size=9, anchor="end")
    for tick in _ticks(t1 - t0, count=6):
        x = margin_left + tick / t_span * (plot_w - bin_w)
        canvas.text(x, height - margin_bottom + 14, f"{tick:g}s", size=9,
                    anchor="middle")
    return canvas.render()
