"""Minimal SVG chart rendering (no plotting dependency exists offline).

Two chart shapes cover every figure in the paper:

* :func:`grouped_bars` — Figures 4-1/4-2/4-3/4-4: one group of bars per
  workload, one bar per strategy × prefetch.
* :func:`rate_timeline` — Figure 4-5: stacked byte-rate areas over
  time, fault-support traffic drawn in white with an outline (as in
  the paper) over the bulk traffic in black.

Charts are deliberately spartan — axis, ticks, labels, data — and emit
self-contained SVG strings suitable for writing straight to disk.
"""

from xml.sax.saxutils import escape

#: A small qualitative palette (first entry is used for pure-copy).
PALETTE = (
    "#444444",
    "#1f77b4",
    "#ff7f0e",
    "#2ca02c",
    "#d62728",
    "#9467bd",
    "#8c564b",
    "#e377c2",
    "#7f7f7f",
    "#bcbd22",
    "#17becf",
)


class SvgCanvas:
    """Accumulates SVG elements with a fixed viewport."""

    def __init__(self, width, height):
        self.width = width
        self.height = height
        self._parts = []

    def rect(self, x, y, w, h, fill, stroke=None, stroke_width=1):
        """Add a rectangle."""
        stroke_attr = (
            f' stroke="{stroke}" stroke-width="{stroke_width}"' if stroke else ""
        )
        self._parts.append(
            f'<rect x="{x:.2f}" y="{y:.2f}" width="{w:.2f}" '
            f'height="{h:.2f}" fill="{fill}"{stroke_attr}/>'
        )

    def line(self, x1, y1, x2, y2, stroke="#000", width=1):
        """Add a line segment."""
        self._parts.append(
            f'<line x1="{x1:.2f}" y1="{y1:.2f}" x2="{x2:.2f}" '
            f'y2="{y2:.2f}" stroke="{stroke}" stroke-width="{width}"/>'
        )

    def text(self, x, y, content, size=11, anchor="start", rotate=None):
        """Add escaped text."""
        transform = (
            f' transform="rotate({rotate} {x:.2f} {y:.2f})"' if rotate else ""
        )
        self._parts.append(
            f'<text x="{x:.2f}" y="{y:.2f}" font-size="{size}" '
            f'font-family="sans-serif" text-anchor="{anchor}"{transform}>'
            f"{escape(str(content))}</text>"
        )

    def render(self):
        """The complete SVG document as a string."""
        body = "\n".join(self._parts)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width}" height="{self.height}" '
            f'viewBox="0 0 {self.width} {self.height}">\n'
            f'<rect width="{self.width}" height="{self.height}" '
            f'fill="white"/>\n{body}\n</svg>'
        )


def _ticks(limit, count=5):
    """Pleasant tick values for [0, limit]."""
    if limit <= 0:
        return [0]
    raw = limit / count
    magnitude = 10 ** max(0, len(str(int(raw))) - 1)
    step = max(1, round(raw / magnitude)) * magnitude
    values = []
    value = 0
    while value <= limit + 1e-9:
        values.append(value)
        value += step
    return values


def grouped_bars(
    groups,
    series_names,
    title="",
    y_label="",
    width=900,
    height=420,
    allow_negative=False,
):
    """Render grouped bars.

    ``groups`` is ``[(group_label, [v1, v2, ...]), ...]`` with one
    value per entry of ``series_names``.
    """
    margin_left, margin_bottom, margin_top = 70, 60, 40
    plot_w = width - margin_left - 20
    plot_h = height - margin_top - margin_bottom
    canvas = SvgCanvas(width, height)
    canvas.text(width / 2, 20, title, size=14, anchor="middle")
    canvas.text(16, margin_top - 10, y_label, size=11)

    values = [v for _, vs in groups for v in vs]
    top = max(values + [0.0]) or 1.0
    bottom = min(values + [0.0]) if allow_negative else 0.0
    span = (top - bottom) or 1.0

    def y_of(value):
        return margin_top + plot_h * (1 - (value - bottom) / span)

    zero_y = y_of(0.0)
    for tick in _ticks(top):
        canvas.line(margin_left - 4, y_of(tick), width - 20, y_of(tick),
                    stroke="#dddddd")
        canvas.text(margin_left - 8, y_of(tick) + 4, f"{tick:g}",
                    size=10, anchor="end")
    if allow_negative and bottom < 0:
        for tick in _ticks(-bottom):
            if tick == 0:
                continue
            canvas.line(margin_left - 4, y_of(-tick), width - 20, y_of(-tick),
                        stroke="#eeeeee")
            canvas.text(margin_left - 8, y_of(-tick) + 4, f"-{tick:g}",
                        size=10, anchor="end")

    group_w = plot_w / max(1, len(groups))
    bar_w = group_w * 0.8 / max(1, len(series_names))
    for g_index, (label, group_values) in enumerate(groups):
        x0 = margin_left + g_index * group_w + group_w * 0.1
        for s_index, value in enumerate(group_values):
            color = PALETTE[s_index % len(PALETTE)]
            x = x0 + s_index * bar_w
            y_top = min(y_of(value), zero_y)
            bar_h = abs(y_of(value) - zero_y)
            canvas.rect(x, y_top, bar_w * 0.92, max(0.5, bar_h), fill=color)
        canvas.text(
            margin_left + g_index * group_w + group_w / 2,
            height - margin_bottom + 16,
            label,
            size=10,
            anchor="middle",
        )
    canvas.line(margin_left, zero_y, width - 20, zero_y, stroke="#000")
    canvas.line(margin_left, margin_top, margin_left, margin_top + plot_h,
                stroke="#000")

    # Legend along the bottom.
    legend_x = margin_left
    legend_y = height - 14
    for s_index, name in enumerate(series_names):
        color = PALETTE[s_index % len(PALETTE)]
        canvas.rect(legend_x, legend_y - 9, 10, 10, fill=color)
        canvas.text(legend_x + 14, legend_y, name, size=10)
        legend_x += 14 + 7 * len(str(name)) + 16
    return canvas.render()


def rate_timeline(
    series,
    title="",
    width=900,
    height=260,
    y_label="bytes/s",
):
    """Render Figure 4-5-style panels: ``[(t, fault_rate, other_rate)]``.

    Bulk traffic is black, fault-support traffic white with an outline,
    stacked, exactly as the paper draws them.
    """
    margin_left, margin_bottom, margin_top = 70, 40, 30
    plot_w = width - margin_left - 20
    plot_h = height - margin_top - margin_bottom
    canvas = SvgCanvas(width, height)
    canvas.text(width / 2, 18, title, size=13, anchor="middle")
    canvas.text(16, margin_top - 8, y_label, size=10)

    if not series:
        return canvas.render()
    peak = max(fault + other for _, fault, other in series) or 1.0
    t0 = series[0][0]
    t1 = series[-1][0]
    t_span = (t1 - t0) or 1.0
    bin_w = plot_w / len(series)

    base_y = margin_top + plot_h
    for when, fault, other in series:
        x = margin_left + (when - t0) / t_span * (plot_w - bin_w)
        other_h = plot_h * other / peak
        fault_h = plot_h * fault / peak
        if other_h > 0:
            canvas.rect(x, base_y - other_h, bin_w, other_h, fill="#111111")
        if fault_h > 0:
            canvas.rect(
                x,
                base_y - other_h - fault_h,
                bin_w,
                fault_h,
                fill="white",
                stroke="#111111",
                stroke_width=0.6,
            )
    canvas.line(margin_left, base_y, width - 20, base_y, stroke="#000")
    canvas.line(margin_left, margin_top, margin_left, base_y, stroke="#000")
    for tick in _ticks(peak, count=3):
        y = base_y - plot_h * tick / peak
        canvas.text(margin_left - 8, y + 4, f"{tick:,.0f}", size=9, anchor="end")
    for tick in _ticks(t1 - t0, count=6):
        x = margin_left + tick / t_span * (plot_w - bin_w)
        canvas.text(x, height - margin_bottom + 14, f"{tick:g}s", size=9,
                    anchor="middle")
    return canvas.render()
