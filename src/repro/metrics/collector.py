"""The testbed-wide metrics collector.

Everything the evaluation section measures funnels through here: bytes
on the wire (Figure 4-3, 4-5), message-handling time (Figure 4-4),
fault counts and kinds (§4.3.3), and phase boundaries (Tables 4-4/4-5).

Storage lives in the :class:`repro.obs.Registry` owned by the world's
:class:`repro.obs.Instrumentation`, so the same numbers appear in
exported traces without being kept twice; the legacy attribute views
(``faults``, ``nms_busy_s``, ...) are derived from the registry.
"""

from collections import Counter, namedtuple

from repro.obs import Instrumentation
from repro.obs import _UNSET

LinkRecord = namedtuple("LinkRecord", "time bytes category source dest")
LinkRecord.__doc__ = "One fragment on the wire at a simulated instant."


class MetricsCollector:
    """Accumulates raw measurements during one simulation run."""

    #: Link-record categories that support imaginary-fault activity
    #: (the white areas of Figure 4-5).
    FAULT_CATEGORIES = frozenset({"imag.read", "imag.read.reply"})

    def __init__(self, engine, obs=None):
        self.engine = engine
        if obs is None:
            obs = Instrumentation(clock=lambda: engine.now, enabled=False)
        #: The world's instrumentation (tracer + metrics registry).
        self.obs = obs
        registry = obs.registry
        self._faults = registry.counter("faults_total", labels=("kind",))
        self._link_bytes = registry.counter("link_bytes", labels=("category",))
        self._link_fragments = registry.counter(
            "link_fragments_total", labels=("category",)
        )
        self._nms_busy = registry.counter("nms_busy_seconds", labels=("host",))
        self._nms_messages = registry.counter(
            "nms_messages_total", labels=("host",)
        )
        self._prefetched = registry.counter("prefetched_pages_total")
        self._prefetch_hits = registry.counter("prefetch_hits_total")
        #: Fault-resolution latency: fault entry to page installed.
        self._imag_fault = registry.histogram("imag_fault_seconds")
        #: Wire round trip alone: request sent to reply received.
        self._imag_rtt = registry.histogram("imag_rtt_seconds")
        #: Every fragment transmitted, in time order.
        self.link_records = []
        #: Named phase marks: name -> simulated time.
        self.marks = {}
        # category -> (bytes child, fragments child): the per-fragment
        # hot path skips the family's label resolution after first use.
        self._link_children = {}
        # host name -> (busy child, messages child), same reason: every
        # fragment hop records NMS busy time twice.
        self._nms_children = {}

    # -- recording ----------------------------------------------------------
    def record_link(self, nbytes, category, source, dest, phase=_UNSET):
        """A fragment of ``nbytes`` just crossed the link.

        ``phase`` is the span to credit the bytes to, resolved by the
        sender at ship time (None for unattributed traffic); left
        unset, the instrumentation falls back to the executing
        context's active phase.
        """
        self.link_records.append(
            LinkRecord(self.engine.now, nbytes, category, source, dest)
        )
        children = self._link_children.get(category)
        if children is None:
            children = self._link_children[category] = (
                self._link_bytes.labels(category=category),
                self._link_fragments.labels(category=category),
            )
        children[0].inc(nbytes)
        children[1].inc(1)
        self.obs.on_link(nbytes, category, phase)

    def record_nms(self, host_name, busy_s):
        """The NetMsgServer at ``host_name`` spent ``busy_s`` on a hop."""
        children = self._nms_children.get(host_name)
        if children is None:
            children = self._nms_children[host_name] = (
                self._nms_busy.labels(host=host_name),
                self._nms_messages.labels(host=host_name),
            )
        children[0].inc(busy_s)
        children[1].inc(1)

    def record_fault(self, kind):
        """Count one fault of ``kind`` (fill-zero / disk / imaginary)."""
        self._faults.inc(1, kind=kind)
        self.obs.on_fault(kind)

    def record_imag_latency(self, total_s, rtt_s):
        """One imaginary fault resolved: total and wire-round-trip time."""
        self._imag_fault.observe(total_s)
        self._imag_rtt.observe(rtt_s)
        telemetry = self.obs.telemetry
        if telemetry is not None:
            telemetry.observe("fault.service", total_s)

    def record_prefetch(self, pages):
        """A backer just sent ``pages`` extra pages."""
        self._prefetched.inc(pages)

    def record_prefetch_hit(self):
        """A previously prefetched page was finally referenced."""
        self._prefetch_hits.inc(1)

    def mark(self, name):
        """Stamp the current simulated time under ``name``."""
        self.marks[name] = self.engine.now

    # -- registry-derived legacy views -----------------------------------------
    @property
    def faults(self):
        """Fault counts by kind ("fill-zero", "disk", "imaginary", ...)."""
        return Counter(
            {key[0]: child.value for key, child in self._faults.items()}
        )

    @property
    def nms_busy_s(self):
        """Message-handling CPU seconds, per host name."""
        return Counter(
            {key[0]: child.value for key, child in self._nms_busy.items()}
        )

    @property
    def nms_messages(self):
        """Messages handled (hops), per host name."""
        return Counter(
            {key[0]: child.value for key, child in self._nms_messages.items()}
        )

    @property
    def prefetched_pages(self):
        """Pages delivered by prefetch (beyond the demanded page)."""
        return self._prefetched.value()

    @property
    def prefetch_hits(self):
        """Prefetched pages that were later actually referenced."""
        return self._prefetch_hits.value()

    # -- aggregate views ------------------------------------------------------
    @property
    def total_link_bytes(self):
        """Bytes exchanged between machines (Figure 4-3's metric)."""
        return sum(child.value for _, child in self._link_bytes.items())

    def link_bytes_by_category(self):
        """Bytes on the wire per message category."""
        return Counter(
            {key[0]: child.value for key, child in self._link_bytes.items()}
        )

    @property
    def fault_support_bytes(self):
        """Bytes moved in support of imaginary faults (Fig 4-5 white)."""
        return sum(
            child.value
            for key, child in self._link_bytes.items()
            if key[0] in self.FAULT_CATEGORIES
        )

    @property
    def total_message_handling_s(self):
        """Both hosts' message-manipulation time (Figure 4-4's metric)."""
        return sum(child.value for _, child in self._nms_busy.items())

    @property
    def total_messages(self):
        """Message hops processed across both NetMsgServers."""
        return sum(child.value for _, child in self._nms_messages.items())

    def span(self, start_mark, end_mark):
        """Elapsed simulated seconds between two marks."""
        return self.marks[end_mark] - self.marks[start_mark]

    def prefetch_hit_ratio(self):
        """Fraction of prefetched pages that were later referenced."""
        if self.prefetched_pages == 0:
            return None
        return self.prefetch_hits / self.prefetched_pages
