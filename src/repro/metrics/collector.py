"""The testbed-wide metrics collector.

Everything the evaluation section measures funnels through here: bytes
on the wire (Figure 4-3, 4-5), message-handling time (Figure 4-4),
fault counts and kinds (§4.3.3), and phase boundaries (Tables 4-4/4-5).
"""

from collections import Counter, namedtuple

LinkRecord = namedtuple("LinkRecord", "time bytes category source dest")
LinkRecord.__doc__ = "One fragment on the wire at a simulated instant."


class MetricsCollector:
    """Accumulates raw measurements during one simulation run."""

    #: Link-record categories that support imaginary-fault activity
    #: (the white areas of Figure 4-5).
    FAULT_CATEGORIES = frozenset({"imag.read", "imag.read.reply"})

    def __init__(self, engine):
        self.engine = engine
        #: Every fragment transmitted, in time order.
        self.link_records = []
        #: Message-handling CPU seconds, per host name.
        self.nms_busy_s = Counter()
        #: Messages handled (hops), per host name.
        self.nms_messages = Counter()
        #: Fault counts by kind ("fill-zero", "disk", "imaginary", ...).
        self.faults = Counter()
        #: Pages delivered by prefetch (beyond the demanded page).
        self.prefetched_pages = 0
        #: Prefetched pages that were later actually referenced.
        self.prefetch_hits = 0
        #: Named phase marks: name -> simulated time.
        self.marks = {}

    # -- recording ----------------------------------------------------------
    def record_link(self, nbytes, category, source, dest):
        """A fragment of ``nbytes`` just crossed the link."""
        self.link_records.append(
            LinkRecord(self.engine.now, nbytes, category, source, dest)
        )

    def record_nms(self, host_name, busy_s):
        """The NetMsgServer at ``host_name`` spent ``busy_s`` on a hop."""
        self.nms_busy_s[host_name] += busy_s
        self.nms_messages[host_name] += 1

    def record_fault(self, kind):
        """Count one fault of ``kind`` (fill-zero / disk / imaginary)."""
        self.faults[kind] += 1

    def record_prefetch(self, pages):
        """A backer just sent ``pages`` extra pages."""
        self.prefetched_pages += pages

    def record_prefetch_hit(self):
        """A previously prefetched page was finally referenced."""
        self.prefetch_hits += 1

    def mark(self, name):
        """Stamp the current simulated time under ``name``."""
        self.marks[name] = self.engine.now

    # -- aggregate views ------------------------------------------------------
    @property
    def total_link_bytes(self):
        """Bytes exchanged between machines (Figure 4-3's metric)."""
        return sum(record.bytes for record in self.link_records)

    def link_bytes_by_category(self):
        """Bytes on the wire per message category."""
        out = Counter()
        for record in self.link_records:
            out[record.category] += record.bytes
        return out

    @property
    def fault_support_bytes(self):
        """Bytes moved in support of imaginary faults (Fig 4-5 white)."""
        return sum(
            record.bytes
            for record in self.link_records
            if record.category in self.FAULT_CATEGORIES
        )

    @property
    def total_message_handling_s(self):
        """Both hosts' message-manipulation time (Figure 4-4's metric)."""
        return sum(self.nms_busy_s.values())

    @property
    def total_messages(self):
        """Message hops processed across both NetMsgServers."""
        return sum(self.nms_messages.values())

    def span(self, start_mark, end_mark):
        """Elapsed simulated seconds between two marks."""
        return self.marks[end_mark] - self.marks[start_mark]

    def prefetch_hit_ratio(self):
        """Fraction of prefetched pages that were later referenced."""
        if self.prefetched_pages == 0:
            return None
        return self.prefetch_hits / self.prefetched_pages
