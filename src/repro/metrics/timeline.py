"""Binned byte-rate timelines (Figure 4-5).

The figure plots network transfer rate over the migration + remote
execution interval, splitting imaginary-fault support traffic (white)
from everything else (black).
"""

from collections import namedtuple

TimelineBin = namedtuple("TimelineBin", "start end fault_bytes other_bytes")
TimelineBin.__doc__ = "Bytes transferred during [start, end), split by purpose."


class Timeline:
    """Builds a binned transfer-rate series from link records."""

    def __init__(self, bin_seconds=1.0, fault_categories=None):
        if bin_seconds <= 0:
            raise ValueError("bin_seconds must be positive")
        self.bin_seconds = bin_seconds
        from repro.metrics.collector import MetricsCollector

        self.fault_categories = (
            frozenset(fault_categories)
            if fault_categories is not None
            else MetricsCollector.FAULT_CATEGORIES
        )

    def bins(self, link_records, start=None, end=None):
        """Aggregate records into :class:`TimelineBin` rows.

        Empty bins inside the interval are emitted (rate zero), so the
        series plots without gaps.
        """
        records = list(link_records)
        if not records and (start is None or end is None):
            return []
        t0 = start if start is not None else records[0].time
        t1 = end if end is not None else records[-1].time
        if t1 < t0:
            raise ValueError(f"end {t1} before start {t0}")
        count = max(1, int((t1 - t0) / self.bin_seconds) + 1)
        fault = [0] * count
        other = [0] * count
        for record in records:
            if record.time < t0 or record.time > t1:
                continue
            index = min(int((record.time - t0) / self.bin_seconds), count - 1)
            if record.category in self.fault_categories:
                fault[index] += record.bytes
            else:
                other[index] += record.bytes
        return [
            TimelineBin(
                t0 + i * self.bin_seconds,
                t0 + (i + 1) * self.bin_seconds,
                fault[i],
                other[i],
            )
            for i in range(count)
        ]

    def rates(self, link_records, start=None, end=None):
        """Like :meth:`bins` but in bytes/second."""
        return [
            (
                b.start,
                b.fault_bytes / self.bin_seconds,
                b.other_bytes / self.bin_seconds,
            )
            for b in self.bins(link_records, start=start, end=end)
        ]
