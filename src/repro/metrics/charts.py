"""Tiny ASCII charts for reports and examples.

No plotting dependency exists offline, so the harness renders its
figures as text: horizontal bars for per-trial comparisons and rate
panels for the Figure 4-5 timelines.
"""


def hbar(value, peak, width=40, fill="#"):
    """One horizontal bar scaled against ``peak``."""
    if peak <= 0:
        return ""
    length = int(round(width * max(0.0, value) / peak))
    return fill * min(width, length)


def bar_chart(items, width=40, value_format="{:,.1f}"):
    """Render ``[(label, value), ...]`` as aligned bars.

    >>> print(bar_chart([("a", 2.0), ("bb", 4.0)], width=4))
    a   |##   | 2.0
    bb  |#### | 4.0
    """
    items = list(items)
    if not items:
        return "(no data)"
    label_width = max(len(str(label)) for label, _ in items)
    peak = max(value for _, value in items) or 1.0
    lines = []
    for label, value in items:
        bar = hbar(value, peak, width)
        lines.append(
            f"{str(label):<{label_width}}  |{bar:<{width}} | "
            + value_format.format(value)
        )
    return "\n".join(lines)


def signed_bar(value, scale=1.0, half_width=18, positive="#", negative="-"):
    """A bar centred on zero (for speedup/slowdown charts)."""
    magnitude = min(half_width, int(round(abs(value) * scale)))
    if value >= 0:
        return " " * half_width + positive * magnitude
    return " " * (half_width - magnitude) + negative * magnitude


def rate_panel(series, width=40, time_format="{:7.1f}s"):
    """Render ``[(time, fault_rate, other_rate), ...]`` as a panel.

    Used for the Figure 4-5 byte-rate timelines; the tag column marks
    bins dominated by imaginary-fault support traffic.
    """
    series = list(series)
    if not series:
        return "(no data)"
    peak = max(fault + other for _, fault, other in series) or 1.0
    lines = []
    for when, fault, other in series:
        total = fault + other
        tag = "fault" if fault > other else ("bulk" if total else "")
        lines.append(
            time_format.format(when)
            + f" |{hbar(total, peak, width):<{width}}| "
            + f"{total:>12,.0f} B/s {tag}"
        )
    return "\n".join(lines)
