"""Instrumentation: counters, timelines and report formatting."""

from repro.metrics.collector import LinkRecord, MetricsCollector
from repro.metrics.timeline import Timeline

__all__ = ["LinkRecord", "MetricsCollector", "Timeline"]
