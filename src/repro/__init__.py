"""repro — a reproduction of Zayas, *Attacking the Process Migration
Bottleneck* (SOSP 1987).

The package simulates the Accent distributed-OS testbed on which the
paper's copy-on-reference process-migration facility was built and
evaluated, and regenerates every table and figure of the paper's
evaluation section.

Layering (bottom to top):

``repro.sim``
    Deterministic discrete-event simulation kernel.
``repro.accent``
    The Accent substrate: virtual memory (512-byte pages, sparse address
    spaces, copy-on-write, accessibility maps), IPC (ports, rights,
    messages), paging disk, Pager/Scheduler, kernel and hosts.
``repro.cor``
    The copy-on-reference facility: imaginary segments, backing ports,
    prefetch policies.
``repro.net``
    Network substrate: links and the NetMsgServer.
``repro.migration``
    ExciseProcess/InsertProcess, Core/RIMAS context messages, the
    MigrationManager and the three transfer strategies.
``repro.workloads``
    The paper's seven representative processes as workload descriptors
    plus reference-trace generators.
``repro.metrics`` / ``repro.experiments``
    Instrumentation and the per-table/figure experiment harness.

Quickstart
----------
>>> from repro import Testbed, WORKLOADS
>>> bed = Testbed(seed=1987)
>>> result = bed.migrate("minprog", strategy="pure-iou")
>>> result.verified          # page contents intact after migration
True
"""

__version__ = "1.0.0"

# Public names are resolved lazily (PEP 562) so that importing low-level
# subpackages (e.g. repro.sim) never pulls in the whole stack.
_LAZY = {
    "Calibration": ("repro.experiments.calibration", "Calibration"),
    "ChainResult": ("repro.testbed", "ChainResult"),
    "MigrationResult": ("repro.testbed", "MigrationResult"),
    "PrecopyResult": ("repro.testbed", "PrecopyResult"),
    "PURE_COPY": ("repro.migration.strategy", "PURE_COPY"),
    "PURE_IOU": ("repro.migration.strategy", "PURE_IOU"),
    "RESIDENT_SET": ("repro.migration.strategy", "RESIDENT_SET"),
    "WORKING_SET": ("repro.migration.strategy", "WORKING_SET"),
    "Strategy": ("repro.migration.strategy", "Strategy"),
    "Testbed": ("repro.testbed", "Testbed"),
    "WORKLOADS": ("repro.workloads.registry", "WORKLOADS"),
    "WorkloadSpec": ("repro.workloads.spec", "WorkloadSpec"),
    "workload_by_name": ("repro.workloads.registry", "workload_by_name"),
}

__all__ = sorted(_LAZY) + ["__version__"]


def __getattr__(name):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, attr)
    globals()[name] = value
    return value


def __dir__():
    return __all__
