"""The pre-two-lane scheduling discipline, kept as a test oracle.

:class:`ReferenceEngine` re-implements the engine's event queue the way
it was before the two-lane rewrite: one flat heap of ``(time, priority,
seq, event)`` tuples, *every* event paying the tuple allocation and the
O(log n) sift — including the dominant same-instant traffic the
production engine now routes through its near-lane FIFOs.

It exists so the differential oracle (``tests/sim/test_queue_oracle.py``)
can drive randomized schedules through both implementations and assert
the dispatch order is identical entry for entry.  The flat heap *is*
the definition of the engine's total order — ``(time, priority, seq)``
lexicographically — so agreement with it proves the two-lane queue
preserved that order exactly.

This module is deliberately simple rather than fast.  Do not use it in
production paths; it is not exported from :mod:`repro.sim`.
"""

from heapq import heappop, heappush
from itertools import count
from time import perf_counter

from repro.sim.engine import Engine, NORMAL
from repro.sim.errors import EmptySchedule, SimulationError
from repro.sim.events import Event, PENDING

_INF = float("inf")


class ReferenceEngine(Engine):
    """An :class:`~repro.sim.engine.Engine` with the original flat heap.

    Behaviourally identical to the production engine (same factories,
    same event semantics, same cancel-by-mark API); only the queue data
    structure differs.  Cancelled entries are dropped when they surface
    at the top of the heap, exactly as the two-lane engine drops them
    when they surface in a lane.
    """

    def __init__(self, initial_time=0.0):
        super().__init__(initial_time)
        #: The flat queue: (time, priority, seq, event), heap-ordered.
        self._ref_heap = []
        self._ref_seq = count()

    # -- scheduling ---------------------------------------------------------
    def schedule(self, event, delay=0.0, priority=None):
        """Queue ``event`` at ``now + delay`` on the flat heap."""
        if delay < 0:
            raise SimulationError(
                f"cannot schedule into the past (delay={delay})"
            )
        if priority is None:
            priority = NORMAL
        elif not 0 <= priority <= 2:
            raise SimulationError(f"unknown scheduling priority {priority!r}")
        heappush(
            self._ref_heap,
            (self._now + delay, priority, next(self._ref_seq), event),
        )

    def cancel(self, event):
        """Mark ``event`` cancelled; dropped when its entry surfaces."""
        if event._value is PENDING:
            raise SimulationError(f"cannot cancel untriggered {event!r}")
        if event.callbacks is None:
            raise SimulationError(f"cannot cancel processed {event!r}")
        self._cancelled.add(event)

    def peek(self):
        """Time of the next queue entry, or ``inf`` if none remain."""
        return self._ref_heap[0][0] if self._ref_heap else _INF

    # -- dispatch -----------------------------------------------------------
    def _pop_live(self):
        """Pop the next non-cancelled event, advancing the clock.

        Returns ``None`` once the heap is empty.  The clock advances to
        each popped entry's timestamp, cancelled or not, mirroring the
        two-lane engine (whose roll advances the clock even when every
        entry at that instant was cancelled).
        """
        heap = self._ref_heap
        cancelled = self._cancelled
        while heap:
            when, _, _, event = heappop(heap)
            self._now = when
            if cancelled and event in cancelled:
                cancelled.discard(event)
                continue
            return event
        return None

    def _dispatch(self, event):
        # Same per-event sequence as the production loops: kind-log
        # append, callbacks, observer fan-out.
        log = self.kind_log
        if log is not None:
            log.append(event.__class__)
        event._process()
        for fn in self._observers:
            fn(self._now, event)

    def step(self):
        """Process exactly one event (EmptySchedule if none remain)."""
        event = self._pop_live()
        if event is None:
            raise EmptySchedule("no scheduled events remain") from None
        self.dispatched += 1
        log = self.kind_log
        if log is not None:
            log.append(event.__class__)
        event._process()
        for fn in self._observers:
            fn(self._now, event)

    def run(self, until=None):
        """Run the simulation; same contract as :meth:`Engine.run`."""
        entered = perf_counter()
        dispatched = 0
        try:
            if until is None:
                while True:
                    event = self._pop_live()
                    if event is None:
                        return None
                    dispatched += 1
                    self._dispatch(event)

            if isinstance(until, Event):
                while until.callbacks is not None:
                    event = self._pop_live()
                    if event is None:
                        raise SimulationError(
                            "run(until=event) exhausted all events before "
                            "the target event triggered — deadlock?"
                        )
                    dispatched += 1
                    self._dispatch(event)
                if until._ok:
                    return until._value
                until.defuse()
                raise until._value

            horizon = float(until)
            if horizon < self._now:
                raise SimulationError(
                    f"until={horizon} is in the past (now={self._now})"
                )
            heap = self._ref_heap
            cancelled = self._cancelled
            while heap and heap[0][0] < horizon:
                when, _, _, event = heappop(heap)
                self._now = when
                if cancelled and event in cancelled:
                    cancelled.discard(event)
                    continue
                dispatched += 1
                self._dispatch(event)
            self._now = horizon
            return None
        finally:
            self.dispatched += dispatched
            self.wall_s += perf_counter() - entered
