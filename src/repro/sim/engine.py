"""The simulation engine: event queue and simulated clock."""

import heapq
from itertools import count
from time import perf_counter

from repro.sim.errors import EmptySchedule, SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process

#: Default scheduling priority.
NORMAL = 1
#: Events scheduled with URGENT at the same timestamp run first.
URGENT = 0
#: Events scheduled with DEFERRED at the same timestamp run after every
#: NORMAL event already due at that instant — the batching window used
#: to coalesce same-instant imaginary faults into one request.
DEFERRED = 2

#: When set (see :func:`repro.obs.prof.profiled`), every Engine built
#: afterwards dispatches through this profiler's instrumented loop
#: instead of the inlined fast paths below.  ``None`` — the default —
#: keeps the hot path entirely untouched: the only residue is one
#: attribute read per :meth:`Engine.run` call.
PROFILER = None


class Engine:
    """Discrete-event engine with a deterministic total order of events.

    Events scheduled for the same simulated time are ordered by priority
    and then by insertion sequence, so runs are fully reproducible.

    Example
    -------
    >>> eng = Engine()
    >>> def hello(eng):
    ...     yield eng.timeout(3.5)
    ...     return "done"
    >>> proc = eng.process(hello(eng))
    >>> eng.run(proc)
    'done'
    >>> eng.now
    3.5
    """

    def __init__(self, initial_time=0.0):
        self._now = float(initial_time)
        self._queue = []
        self._seq = count()
        self.active_process = None
        #: Observers ``fn(now, event)`` invoked after each event is
        #: processed (see :class:`repro.sim.trace.TraceLog`).  Use
        #: :meth:`add_observer` / :meth:`remove_observer`; several can
        #: coexist (two TraceLogs, say) without clobbering each other.
        self._observers = []
        #: Events processed so far (cheap dispatch count for obs).
        self.dispatched = 0
        #: Host wall-clock seconds spent inside :meth:`run` dispatch
        #: loops — two ``perf_counter`` reads per ``run()`` call, never
        #: per event.  Simulated outputs ignore it; the observability
        #: layer reports it (events/s, ``repro diff`` wall deltas).
        self.wall_s = 0.0
        #: The engine profiler dispatch hook (module default at build
        #: time; see :data:`PROFILER`).  ``None`` = fast path.
        self.profiler = PROFILER
        # kind -> last issued id (see :meth:`serial`).
        self._serials = {}
        #: When set to a list, :meth:`step` appends each processed
        #: event's class — the instrumentation layer's fast path
        #: (``list.append`` is ~4x cheaper per event than a Counter
        #: increment, and an observer callback costs more still); the
        #: log is folded into per-kind counts at export time.
        self.kind_log = None

    def __repr__(self):
        return f"<Engine t={self._now:.6f} pending={len(self._queue)}>"

    @property
    def now(self):
        """Current simulated time in seconds."""
        return self._now

    def clock(self):
        """:attr:`now` as a plain method — a pre-bound callable for
        hot readers (one call, no lambda or descriptor hop)."""
        return self._now

    # -- observers ----------------------------------------------------------
    @property
    def observer(self):
        """The sole observer, None if none, or a tuple if several.

        Assigning replaces *all* observers (legacy single-observer
        behaviour); use :meth:`add_observer` to stack observers without
        clobbering ones already installed.
        """
        if not self._observers:
            return None
        if len(self._observers) == 1:
            return self._observers[0]
        return tuple(self._observers)

    @observer.setter
    def observer(self, fn):
        self._observers = [] if fn is None else [fn]

    def add_observer(self, fn):
        """Append ``fn(now, event)`` to the observer fan-out list."""
        self._observers.append(fn)

    def remove_observer(self, fn):
        """Remove one installed observer (no-op if absent)."""
        try:
            self._observers.remove(fn)
        except ValueError:
            pass

    def serial(self, kind):
        """Next id (1, 2, ...) in this engine's ``kind`` sequence.

        World-scoped ids keep exports replayable: two worlds built from
        the same seed number their faults and segments identically,
        where a module-global counter would leak position across runs
        within one interpreter.
        """
        value = self._serials.get(kind, 0) + 1
        self._serials[kind] = value
        return value

    # -- factories ---------------------------------------------------------
    def event(self):
        """Create a fresh pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay, value=None):
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def defer(self, value=None):
        """Event that fires at the current instant, after NORMAL events.

        A zero-delay wait at :data:`DEFERRED` priority: every NORMAL
        event already scheduled for ``now`` runs first.  This is the
        coalescing window the batched fault path uses — faults raised
        in the same instant all reach the collector before the leader's
        deferred wakeup closes it.
        """
        event = Event(self)
        event.succeed(value, priority=DEFERRED)
        return event

    def process(self, generator, name=None):
        """Start a new :class:`Process` running ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events):
        """Event that fires once every event in ``events`` has succeeded."""
        return AllOf(self, events)

    def any_of(self, events):
        """Event that fires once any event in ``events`` has succeeded."""
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------
    def schedule(self, event, delay=0.0, priority=None):
        """Queue a triggered event for processing at ``now + delay``."""
        if priority is None:
            priority = NORMAL
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(
            self._queue, (self._now + delay, priority, next(self._seq), event)
        )

    def peek(self):
        """Time of the next scheduled event, or ``inf`` if none remain."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self):
        """Process exactly one event; raise :class:`EmptySchedule` if none."""
        try:
            when, _, _, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule("no scheduled events remain") from None
        self._now = when
        self.dispatched += 1
        log = self.kind_log
        if log is not None:
            log.append(event.__class__)
        event._process()
        for fn in self._observers:
            fn(when, event)

    def run(self, until=None):
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None`` — run until no events remain and return ``None``.
            An :class:`Event` — run until it is processed; return its
            value (or raise its exception).  A number — process every
            event scheduled strictly before that time, then set the clock
            to it.

        The dispatch loops below inline :meth:`step` with the queue,
        ``heappop`` and the kind log hoisted into locals, and fold the
        dispatch count in once at the end — at cluster scale (tens of
        thousands of events per run) the per-event method call and
        attribute traffic are the single largest simulator overhead.
        The pop-assign-dispatch sequence is kept identical to
        :meth:`step`, so event order never changes.

        When a profiler is attached (``repro profile``) the dispatch
        loop is delegated to :meth:`EngineProfiler.run_engine
        <repro.obs.prof.EngineProfiler.run_engine>`, which replays the
        exact same pop-assign-dispatch sequence with per-event
        wall-clock attribution — event order, and therefore every
        simulated output, is identical either way.
        """
        if self.profiler is not None:
            return self.profiler.run_engine(self, until)
        entered = perf_counter()
        queue = self._queue
        pop = heapq.heappop
        log = self.kind_log
        dispatched = 0
        try:
            if until is None:
                while queue:
                    when, _, _, event = pop(queue)
                    self._now = when
                    dispatched += 1
                    if log is not None:
                        log.append(event.__class__)
                    event._process()
                    if self._observers:
                        for fn in self._observers:
                            fn(when, event)
                return None

            if isinstance(until, Event):
                while not until.processed:
                    if not queue:
                        raise SimulationError(
                            "run(until=event) exhausted all events before "
                            "the target event triggered — deadlock?"
                        )
                    when, _, _, event = pop(queue)
                    self._now = when
                    dispatched += 1
                    if log is not None:
                        log.append(event.__class__)
                    event._process()
                    if self._observers:
                        for fn in self._observers:
                            fn(when, event)
                if until.ok:
                    return until.value
                until.defuse()
                raise until.value

            horizon = float(until)
            if horizon < self._now:
                raise SimulationError(
                    f"until={horizon} is in the past (now={self._now})"
                )
            while queue and queue[0][0] < horizon:
                when, _, _, event = pop(queue)
                self._now = when
                dispatched += 1
                if log is not None:
                    log.append(event.__class__)
                event._process()
                if self._observers:
                    for fn in self._observers:
                        fn(when, event)
            self._now = horizon
            return None
        finally:
            self.dispatched += dispatched
            self.wall_s += perf_counter() - entered
