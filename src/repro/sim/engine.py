"""The simulation engine: two-lane event queue and simulated clock.

The event queue is split into two lanes that together preserve the
exact ``(time, priority, seq)`` total order of the original flat heap:

* **Near lane** — three plain FIFO deques (URGENT / NORMAL / DEFERRED),
  holding every event scheduled for the *current instant*.  Same-instant
  scheduling dominates real workloads (``succeed``/``fail`` resumptions,
  zero-delay timeouts, the DEFERRED batching window), and a deque append
  or popleft is O(1) with no tuple allocation and no sequence-counter
  traffic.
* **Far lane** — the classic heap, holding only events strictly in the
  future.  When every near-lane deque is empty, the engine *rolls* the
  next instant: it pops every heap entry sharing the earliest timestamp
  into the near-lane deques (heap pops at one timestamp come out in
  ``(priority, seq)`` order, so each deque stays seq-sorted) and then
  advances the clock once.

Why the order is provably unchanged: near-lane entries always carry
``time == now`` (they are pushed while an event at ``now`` is being
dispatched, and the clock cannot advance while the near lane is
non-empty because its entries are the global minimum), and far-lane
entries always carry ``time > now`` (pushes compute ``now + delay`` and
route ``== now`` results to the near lane).  A rolled entry was pushed
at an earlier instant than any same-timestamp near-lane append that
follows it, so the roll-then-append order *is* seq order.  The
differential oracle in ``tests/sim/test_queue_oracle.py`` checks this
against the original flat-heap implementation
(:class:`repro.sim.refqueue.ReferenceEngine`) over randomized
schedules.

Cancellation is O(1) by mark: :meth:`Engine.cancel` records the event
in a small set and the dispatch loop drops marked entries when they
surface, without scanning either lane.  A cancelled event is never
dispatched: it does not advance ``dispatched``, never reaches the
``kind_log`` or observers, and its callbacks never run.
"""

import heapq
from itertools import count
from collections import deque
from time import perf_counter

from repro.sim.errors import EmptySchedule, SimulationError
from repro.sim.events import AllOf, AnyOf, Event, PENDING, Timeout
from repro.sim.process import Process

#: Default scheduling priority.
NORMAL = 1
#: Events scheduled with URGENT at the same timestamp run first.
URGENT = 0
#: Events scheduled with DEFERRED at the same timestamp run after every
#: NORMAL event already due at that instant — the batching window used
#: to coalesce same-instant imaginary faults into one request.
DEFERRED = 2

#: When set (see :func:`repro.obs.prof.profiled`), every Engine built
#: afterwards dispatches through this profiler's instrumented loop
#: instead of the inlined fast paths below.  ``None`` — the default —
#: keeps the hot path entirely untouched: the only residue is one
#: attribute read per :meth:`Engine.run` call.
PROFILER = None

_heappush = heapq.heappush
_heappop = heapq.heappop
_INF = float("inf")


class Engine:
    """Discrete-event engine with a deterministic total order of events.

    Events scheduled for the same simulated time are ordered by priority
    and then by insertion sequence, so runs are fully reproducible.

    Example
    -------
    >>> eng = Engine()
    >>> def hello(eng):
    ...     yield eng.timeout(3.5)
    ...     return "done"
    >>> proc = eng.process(hello(eng))
    >>> eng.run(proc)
    'done'
    >>> eng.now
    3.5
    """

    def __init__(self, initial_time=0.0):
        self._now = float(initial_time)
        #: Far lane: (time, priority, seq, event) tuples, time > now.
        self._heap = []
        #: Near lane: one FIFO per priority, every entry at time == now.
        self._lane_urgent = deque()
        self._lane_normal = deque()
        self._lane_deferred = deque()
        #: Priority-indexed view of the near lane (URGENT=0 .. DEFERRED=2).
        self._lanes = (self._lane_urgent, self._lane_normal,
                       self._lane_deferred)
        #: Heap-lane insertion sequence (near-lane FIFOs need no seq:
        #: append order is seq order within a lane).
        self._seq = count()
        #: Events cancelled by mark (see :meth:`cancel`); the dispatch
        #: loop discards them when they surface.  Empty almost always,
        #: so the per-event residue is one truthiness test.
        self._cancelled = set()
        self.active_process = None
        #: Observers ``fn(now, event)`` invoked after each event is
        #: processed (see :class:`repro.sim.trace.TraceLog`).  Use
        #: :meth:`add_observer` / :meth:`remove_observer`; several can
        #: coexist (two TraceLogs, say) without clobbering each other.
        self._observers = []
        #: Events processed so far (cheap dispatch count for obs).
        self.dispatched = 0
        #: Host wall-clock seconds spent inside :meth:`run` dispatch
        #: loops — two ``perf_counter`` reads per ``run()`` call, never
        #: per event.  Simulated outputs ignore it; the observability
        #: layer reports it (events/s, ``repro diff`` wall deltas).
        self.wall_s = 0.0
        #: The engine profiler dispatch hook (module default at build
        #: time; see :data:`PROFILER`).  ``None`` = fast path.
        self.profiler = PROFILER
        # kind -> last issued id (see :meth:`serial`).
        self._serials = {}
        #: When set to a list, dispatch appends each processed event's
        #: class — the instrumentation layer's fast path
        #: (``list.append`` is ~4x cheaper per event than a Counter
        #: increment, and an observer callback costs more still); the
        #: log is folded into per-kind counts at export time.
        self.kind_log = None

    def __repr__(self):
        pending = (len(self._heap) + len(self._lane_urgent)
                   + len(self._lane_normal) + len(self._lane_deferred))
        return f"<Engine t={self._now:.6f} pending={pending}>"

    @property
    def now(self):
        """Current simulated time in seconds."""
        return self._now

    def clock(self):
        """:attr:`now` as a plain method — a pre-bound callable for
        hot readers (one call, no lambda or descriptor hop)."""
        return self._now

    # -- observers ----------------------------------------------------------
    @property
    def observer(self):
        """The sole observer, None if none, or a tuple if several.

        Assigning replaces *all* observers (legacy single-observer
        behaviour); use :meth:`add_observer` to stack observers without
        clobbering ones already installed.
        """
        if not self._observers:
            return None
        if len(self._observers) == 1:
            return self._observers[0]
        return tuple(self._observers)

    @observer.setter
    def observer(self, fn):
        self._observers = [] if fn is None else [fn]

    def add_observer(self, fn):
        """Append ``fn(now, event)`` to the observer fan-out list."""
        self._observers.append(fn)

    def remove_observer(self, fn):
        """Remove one installed observer (no-op if absent)."""
        try:
            self._observers.remove(fn)
        except ValueError:
            pass

    def serial(self, kind):
        """Next id (1, 2, ...) in this engine's ``kind`` sequence.

        World-scoped ids keep exports replayable: two worlds built from
        the same seed number their faults and segments identically,
        where a module-global counter would leak position across runs
        within one interpreter.
        """
        value = self._serials.get(kind, 0) + 1
        self._serials[kind] = value
        return value

    # -- factories ---------------------------------------------------------
    def event(self):
        """Create a fresh pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay, value=None):
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def defer(self, value=None):
        """Event that fires at the current instant, after NORMAL events.

        A zero-delay wait at :data:`DEFERRED` priority: every NORMAL
        event already scheduled for ``now`` runs first.  This is the
        coalescing window the batched fault path uses — faults raised
        in the same instant all reach the collector before the leader's
        deferred wakeup closes it.
        """
        event = Event(self)
        event.succeed(value, priority=DEFERRED)
        return event

    def process(self, generator, name=None):
        """Start a new :class:`Process` running ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events):
        """Event that fires once every event in ``events`` has succeeded."""
        return AllOf(self, events)

    def any_of(self, events):
        """Event that fires once any event in ``events`` has succeeded."""
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------
    def schedule(self, event, delay=0.0, priority=None):
        """Queue a triggered event for processing at ``now + delay``.

        Same-instant events (``delay == 0``, or a delay so small the
        timestamp rounds back to ``now``) go to the near-lane FIFO for
        their priority; strictly-future events go to the far-lane heap.
        ``priority`` must be one of :data:`URGENT`, :data:`NORMAL`,
        :data:`DEFERRED` (or ``None`` for NORMAL).
        """
        if delay == 0.0:
            if priority is None:
                self._lane_normal.append(event)
            else:
                self._lanes[priority].append(event)
            return
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        now = self._now
        when = now + delay
        if when == now:
            # A denormal-small delay that rounds back to the current
            # instant — near-lane, so the far lane stays strictly future.
            if priority is None:
                self._lane_normal.append(event)
            else:
                self._lanes[priority].append(event)
            return
        if priority is None:
            priority = NORMAL
        elif not 0 <= priority <= 2:
            raise SimulationError(f"unknown scheduling priority {priority!r}")
        _heappush(self._heap, (when, priority, next(self._seq), event))

    def cancel(self, event):
        """Cancel a scheduled event in O(1): mark it; the dispatch loop
        drops it when its queue entry surfaces.

        The event must be triggered (scheduled) and not yet processed.
        A cancelled event never fires: its callbacks never run, it is
        not counted in :attr:`dispatched`, and it never reaches the
        ``kind_log`` or observers — in either lane, including entries
        that have already rolled from the far-lane heap into the
        near-lane FIFOs.  A cancelled *failed* event will not re-raise
        at the end of the run.
        """
        if event._value is PENDING:
            raise SimulationError(f"cannot cancel untriggered {event!r}")
        if event.callbacks is None:
            raise SimulationError(f"cannot cancel processed {event!r}")
        self._cancelled.add(event)

    def peek(self):
        """Time of the next scheduled event, or ``inf`` if none remain.

        Cancelled-but-unpopped entries still occupy their slot, so
        ``peek`` may report the instant of an event that will be
        dropped rather than dispatched.
        """
        if self._lane_urgent or self._lane_normal or self._lane_deferred:
            return self._now
        return self._heap[0][0] if self._heap else _INF

    def _roll(self):
        """Advance to the next scheduled instant: move every far-lane
        entry sharing the earliest timestamp into the near-lane FIFOs.

        Heap pops at a fixed timestamp come out in ``(priority, seq)``
        order, so each FIFO receives its entries seq-sorted, and every
        same-instant append that follows carries a later seq — the
        flat-heap total order is preserved exactly.
        """
        heap = self._heap
        when = heap[0][0]
        lanes = self._lanes
        while heap and heap[0][0] == when:
            entry = _heappop(heap)
            lanes[entry[1]].append(entry[3])
        self._now = when

    def _next_live(self):
        """Pop the next non-cancelled event, or raise EmptySchedule.

        Rolls the far lane as needed; the clock may advance past
        instants whose every entry was cancelled.
        """
        lane_urgent = self._lane_urgent
        lane_normal = self._lane_normal
        lane_deferred = self._lane_deferred
        cancelled = self._cancelled
        while True:
            if lane_urgent:
                event = lane_urgent.popleft()
            elif lane_normal:
                event = lane_normal.popleft()
            elif lane_deferred:
                event = lane_deferred.popleft()
            elif self._heap:
                self._roll()
                continue
            else:
                raise EmptySchedule("no scheduled events remain") from None
            if cancelled and event in cancelled:
                cancelled.discard(event)
                continue
            return event

    def step(self):
        """Process exactly one event; raise :class:`EmptySchedule` if none."""
        event = self._next_live()
        self.dispatched += 1
        log = self.kind_log
        if log is not None:
            log.append(event.__class__)
        event._process()
        for fn in self._observers:
            fn(self._now, event)

    def run(self, until=None):
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None`` — run until no events remain and return ``None``.
            An :class:`Event` — run until it is processed; return its
            value (or raise its exception).  A number — process every
            event scheduled strictly before that time, then set the clock
            to it.

        The dispatch mode is pre-computed once at entry: with no
        ``kind_log`` and no observers installed — the common case — the
        inlined loops below do *zero* per-event conditional work beyond
        the queue mechanics themselves (lane selection and the
        cancelled-mark truthiness test); the instrumented variant with
        the kind-log append and observer fan-out lives in
        :meth:`_run_observed`.  Both replay the identical
        pop-assign-dispatch sequence, so event order never changes.
        ``Event._process`` is inlined into the loops (events do not
        override it).

        When a profiler is attached (``repro profile``) the dispatch
        loop is delegated to :meth:`EngineProfiler.run_engine
        <repro.obs.prof.EngineProfiler.run_engine>`, which replays the
        exact same sequence with per-event wall-clock attribution —
        event order, and therefore every simulated output, is identical
        either way.
        """
        if self.profiler is not None:
            return self.profiler.run_engine(self, until)
        if self.kind_log is not None or self._observers:
            return self._run_observed(until)
        entered = perf_counter()
        heap = self._heap
        lane_urgent = self._lane_urgent
        lane_normal = self._lane_normal
        lane_deferred = self._lane_deferred
        lanes = self._lanes
        cancelled = self._cancelled
        pop = _heappop
        dispatched = 0
        try:
            if until is None:
                while True:
                    if lane_urgent:
                        event = lane_urgent.popleft()
                    elif lane_normal:
                        event = lane_normal.popleft()
                    elif lane_deferred:
                        event = lane_deferred.popleft()
                    elif heap:
                        when = heap[0][0]
                        while heap and heap[0][0] == when:
                            entry = pop(heap)
                            lanes[entry[1]].append(entry[3])
                        self._now = when
                        continue
                    else:
                        return None
                    if cancelled and event in cancelled:
                        cancelled.discard(event)
                        continue
                    dispatched += 1
                    callbacks = event.callbacks
                    event.callbacks = None
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event._defused:
                        raise event._value

            if isinstance(until, Event):
                while until.callbacks is not None:
                    if lane_urgent:
                        event = lane_urgent.popleft()
                    elif lane_normal:
                        event = lane_normal.popleft()
                    elif lane_deferred:
                        event = lane_deferred.popleft()
                    elif heap:
                        when = heap[0][0]
                        while heap and heap[0][0] == when:
                            entry = pop(heap)
                            lanes[entry[1]].append(entry[3])
                        self._now = when
                        continue
                    else:
                        raise SimulationError(
                            "run(until=event) exhausted all events before "
                            "the target event triggered — deadlock?"
                        )
                    if cancelled and event in cancelled:
                        cancelled.discard(event)
                        continue
                    dispatched += 1
                    callbacks = event.callbacks
                    event.callbacks = None
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event._defused:
                        raise event._value
                if until._ok:
                    return until._value
                until.defuse()
                raise until._value

            horizon = float(until)
            if horizon < self._now:
                raise SimulationError(
                    f"until={horizon} is in the past (now={self._now})"
                )
            while True:
                if lane_urgent or lane_normal or lane_deferred:
                    if self._now >= horizon:
                        break
                    if lane_urgent:
                        event = lane_urgent.popleft()
                    elif lane_normal:
                        event = lane_normal.popleft()
                    else:
                        event = lane_deferred.popleft()
                elif heap:
                    when = heap[0][0]
                    if when >= horizon:
                        break
                    while heap and heap[0][0] == when:
                        entry = pop(heap)
                        lanes[entry[1]].append(entry[3])
                    self._now = when
                    continue
                else:
                    break
                if cancelled and event in cancelled:
                    cancelled.discard(event)
                    continue
                dispatched += 1
                callbacks = event.callbacks
                event.callbacks = None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    raise event._value
            self._now = horizon
            return None
        finally:
            self.dispatched += dispatched
            self.wall_s += perf_counter() - entered

    def _run_observed(self, until):
        """The dispatch loops with kind-log / observer instrumentation.

        Identical pop-assign-dispatch sequence to the fast loops in
        :meth:`run` — only the per-event kind-log append and observer
        fan-out are added, so simulated outputs match byte for byte.
        """
        entered = perf_counter()
        heap = self._heap
        lane_urgent = self._lane_urgent
        lane_normal = self._lane_normal
        lane_deferred = self._lane_deferred
        lanes = self._lanes
        cancelled = self._cancelled
        pop = _heappop
        log = self.kind_log
        observers = self._observers
        dispatched = 0
        try:
            if until is None:
                target = None
                horizon = None
            elif isinstance(until, Event):
                target = until
                horizon = None
            else:
                target = None
                horizon = float(until)
                if horizon < self._now:
                    raise SimulationError(
                        f"until={horizon} is in the past (now={self._now})"
                    )
            while True:
                if target is not None and target.callbacks is None:
                    break
                if lane_urgent or lane_normal or lane_deferred:
                    if horizon is not None and self._now >= horizon:
                        break
                    if lane_urgent:
                        event = lane_urgent.popleft()
                    elif lane_normal:
                        event = lane_normal.popleft()
                    else:
                        event = lane_deferred.popleft()
                elif heap:
                    when = heap[0][0]
                    if horizon is not None and when >= horizon:
                        break
                    while heap and heap[0][0] == when:
                        entry = pop(heap)
                        lanes[entry[1]].append(entry[3])
                    self._now = when
                    continue
                else:
                    if target is not None:
                        raise SimulationError(
                            "run(until=event) exhausted all events before "
                            "the target event triggered — deadlock?"
                        )
                    break
                if cancelled and event in cancelled:
                    cancelled.discard(event)
                    continue
                dispatched += 1
                if log is not None:
                    log.append(event.__class__)
                callbacks = event.callbacks
                event.callbacks = None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    raise event._value
                if observers:
                    now = self._now
                    for fn in observers:
                        fn(now, event)
            if horizon is not None:
                self._now = horizon
                return None
            if target is not None:
                if target._ok:
                    return target._value
                target.defuse()
                raise target._value
            return None
        finally:
            self.dispatched += dispatched
            self.wall_s += perf_counter() - entered
