"""FIFO stores: the queueing primitive behind IPC ports and servers."""

from collections import deque

from repro.sim.errors import SimulationError
from repro.sim.events import Event


class StorePut(Event):
    """Event returned by :meth:`Store.put`; succeeds once the item is in."""

    __slots__ = ("item",)

    def __init__(self, store, item):
        super().__init__(store.engine)
        self.item = item


class StoreGet(Event):
    """Event returned by :meth:`Store.get`; succeeds with the next item."""

    __slots__ = ()


class Store:
    """An unbounded-or-bounded FIFO queue of arbitrary items.

    ``put`` and ``get`` return events.  A ``get`` on a non-empty store and
    a ``put`` on a non-full store succeed immediately (in the same engine
    step); otherwise the caller queues up, FIFO.  This models Accent IPC
    ports, whose messages are buffered in the kernel with a backlog limit.
    """

    def __init__(self, engine, capacity=None, name=None):
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.name = name or "store"
        self.items = deque()
        self._getters = deque()
        self._putters = deque()

    def __repr__(self):
        return (
            f"<Store {self.name} items={len(self.items)} "
            f"getters={len(self._getters)} putters={len(self._putters)}>"
        )

    def __len__(self):
        return len(self.items)

    @property
    def is_full(self):
        """True when a bounded store has reached its capacity."""
        return self.capacity is not None and len(self.items) >= self.capacity

    def put(self, item):
        """Queue ``item``; returns an event that fires once accepted."""
        put_event = StorePut(self, item)
        self._putters.append(put_event)
        self._dispatch()
        return put_event

    def get(self):
        """Request the next item; returns an event firing with the item."""
        get_event = StoreGet(self.engine)
        self._getters.append(get_event)
        self._dispatch()
        return get_event

    def try_get(self):
        """Non-blocking get: the next item, or ``None`` if empty.

        Only valid when nothing else is waiting to get — mixing blocking
        and non-blocking consumers would break FIFO fairness.
        """
        if self._getters:
            raise SimulationError(
                f"try_get on {self.name!r} while blocking getters wait"
            )
        if not self.items:
            self._admit_putters()
            return None
        item = self.items.popleft()
        self._admit_putters()
        return item

    # -- internals -----------------------------------------------------------
    def _admit_putters(self):
        while self._putters and not self.is_full:
            put_event = self._putters.popleft()
            self.items.append(put_event.item)
            put_event.succeed()

    def _dispatch(self):
        self._admit_putters()
        while self._getters and self.items:
            get_event = self._getters.popleft()
            get_event.succeed(self.items.popleft())
            self._admit_putters()
