"""Named deterministic random streams.

Every stochastic component of the testbed (trace generators, service-time
jitter) draws from its own named stream so that adding randomness to one
component never perturbs another — a standard discipline for reproducible
systems simulation.
"""

import hashlib
import random


class SeededStreams:
    """A factory of independent :class:`random.Random` streams.

    Streams are keyed by name; the per-stream seed is derived from the
    master seed and the name via SHA-256, so streams are stable across
    runs and machines.

    >>> streams = SeededStreams(42)
    >>> a = streams.stream("alpha").random()
    >>> b = SeededStreams(42).stream("alpha").random()
    >>> a == b
    True
    """

    def __init__(self, master_seed=0):
        self.master_seed = int(master_seed)
        self._streams = {}

    def __repr__(self):
        return (
            f"<SeededStreams master={self.master_seed} "
            f"open={sorted(self._streams)}>"
        )

    def stream(self, name):
        """The stream for ``name``, created on first use."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(self.derive_seed(name))
            self._streams[name] = rng
        return rng

    def derive_seed(self, name):
        """The integer seed a stream named ``name`` would use."""
        material = f"{self.master_seed}:{name}".encode("utf-8")
        digest = hashlib.sha256(material).digest()
        return int.from_bytes(digest[:8], "big")

    def fork(self, name):
        """A child factory whose streams are independent of this one's."""
        return SeededStreams(self.derive_seed(f"fork:{name}"))
