"""Generator-based simulated processes."""

from repro.sim.errors import Interrupt, SimulationError, StopProcess
from repro.sim.events import Event, PENDING


class Process(Event):
    """A coroutine driven by the engine.

    A process wraps a generator.  Each value the generator yields must be
    an :class:`Event`; the process sleeps until that event is processed
    and is resumed with the event's value (or the event's exception raised
    at the yield point).  The process object is itself an event that
    succeeds with the generator's return value, so processes can wait on
    one another simply by yielding them.
    """

    __slots__ = ("_generator", "name", "_target")

    def __init__(self, engine, generator, name=None):
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(engine)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process currently waits on (None while running).
        self._target = None
        # Kick the process off via an initialisation event so that the
        # body only starts running once the engine does.
        init = Event(engine)
        init._ok = True
        init._value = None
        init.callbacks.append(self._resume)
        engine.schedule(init)

    def __repr__(self):
        state = "alive" if self.is_alive else "dead"
        return f"<Process {self.name} {state}>"

    @property
    def is_alive(self):
        """True until the generator finishes or fails."""
        return self._value is PENDING

    def interrupt(self, cause=None):
        """Throw :class:`Interrupt` into the process at its yield point.

        Interrupting a dead process is an error; interrupting a waiting
        process detaches it from its current target event (the event
        itself still fires, but no longer resumes this process).
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead {self!r}")
        if self.engine.active_process is self:
            raise SimulationError("a process cannot interrupt itself")
        # Deliver asynchronously (via an immediately-scheduled event) to
        # keep event ordering deterministic.
        interrupt_event = Event(self.engine)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        interrupt_event.callbacks.append(self._resume)
        self.engine.schedule(interrupt_event)

    # -- engine interface ----------------------------------------------------
    def _resume(self, event):
        """Advance the generator with ``event``'s outcome."""
        engine = self.engine
        engine.active_process = self
        self._target = None
        generator = self._generator
        send = generator.send
        try:
            while True:
                try:
                    if event is None or event._ok:
                        target = send(None if event is None else event._value)
                    else:
                        event.defuse()
                        target = generator.throw(event._value)
                except StopIteration as stop:
                    if self._value is PENDING:
                        self.succeed(stop.value)
                    return
                except StopProcess as stop:
                    if self._value is PENDING:
                        self.succeed(stop.value)
                    return
                except BaseException as error:
                    if self._value is PENDING:
                        self.fail(error)
                        return
                    raise

                if not isinstance(target, Event):
                    kind = type(target).__name__
                    self.fail(
                        SimulationError(
                            f"process {self.name!r} yielded a non-event "
                            f"({kind}); yield Events, Timeouts or Processes"
                        )
                    )
                    return
                if target.engine is not engine:
                    self.fail(
                        SimulationError(
                            f"process {self.name!r} yielded an event from "
                            "a different engine"
                        )
                    )
                    return

                callbacks = target.callbacks
                if callbacks is None:
                    # Already resolved — continue synchronously.
                    event = target
                    continue
                callbacks.append(self._resume)
                self._target = target
                return
        finally:
            engine.active_process = None
