"""Deterministic discrete-event simulation kernel.

This package is the substrate on which the Accent testbed reproduction
runs.  It provides a small, simpy-flavoured coroutine scheduler:

* :class:`~repro.sim.engine.Engine` — the event loop and simulated clock.
* :class:`~repro.sim.events.Event` and friends — one-shot synchronisation
  points that carry a value or an exception.
* :class:`~repro.sim.process.Process` — a generator-based simulated
  process; ``yield`` an event to wait for it.
* :class:`~repro.sim.store.Store` — FIFO message queues (used for IPC
  ports and server request queues).
* :class:`~repro.sim.resource.Resource` — counted resources with FIFO
  queueing (used for server CPUs, disk arms and network links).
* :class:`~repro.sim.rng.SeededStreams` — named deterministic random
  streams so every component draws from its own reproducible sequence.

Everything is deterministic: given the same seed and the same program,
two runs produce identical event orderings and timings.
"""

from repro.sim.engine import DEFERRED, Engine, NORMAL, URGENT
from repro.sim.errors import Interrupt, SimulationError, StopProcess
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process
from repro.sim.resource import Preempted, Request, Resource
from repro.sim.rng import SeededStreams
from repro.sim.store import Store

__all__ = [
    "AllOf",
    "AnyOf",
    "DEFERRED",
    "Engine",
    "Event",
    "Interrupt",
    "NORMAL",
    "Preempted",
    "Process",
    "Request",
    "Resource",
    "SeededStreams",
    "SimulationError",
    "StopProcess",
    "Store",
    "Timeout",
    "URGENT",
]
