"""Exception types used by the simulation kernel."""


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel itself."""


class EmptySchedule(SimulationError):
    """Raised by :meth:`Engine.step` when no events remain."""


class StopProcess(Exception):
    """Raised inside a process generator to terminate it early.

    ``return`` statements are the usual way to finish a process; this
    exception exists for helper functions that need to abort the process
    from several stack frames down.  The process event succeeds with the
    ``value`` attribute.
    """

    def __init__(self, value=None):
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The interrupting party supplies an arbitrary ``cause`` describing why
    the interrupt happened (e.g. a migration request arriving while a
    workload computes).
    """

    def __init__(self, cause=None):
        super().__init__(cause)

    @property
    def cause(self):
        """The object passed to :meth:`Process.interrupt`."""
        return self.args[0]
