"""Counted resources with FIFO queueing.

A :class:`Resource` models a server with a fixed number of identical
slots — a CPU handling NetMsgServer messages, a disk arm, a half-duplex
link.  Processes ``yield resource.request()`` to acquire a slot and call
``resource.release(request)`` when done; contention produces queueing
delay, which is how transfer-phase elapsed times emerge in the testbed
simulation.
"""

from collections import deque
from contextlib import contextmanager

from repro.sim.errors import SimulationError
from repro.sim.events import Event


class Preempted(Exception):
    """Raised in a request holder evicted by :meth:`Resource.preempt`."""


class Request(Event):
    """Event returned by :meth:`Resource.request`; fires when granted."""

    __slots__ = ("resource",)

    def __init__(self, resource):
        super().__init__(resource.engine)
        self.resource = resource


class Resource:
    """``capacity`` identical slots granted in FIFO order."""

    def __init__(self, engine, capacity=1, name=None):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.name = name or "resource"
        self._waiting = deque()
        self._users = []
        #: Total simulated time slots have spent busy (for utilisation).
        self.busy_time = 0.0
        self._last_change = engine.now

    def __repr__(self):
        return (
            f"<Resource {self.name} users={len(self._users)}/{self.capacity} "
            f"queued={len(self._waiting)}>"
        )

    @property
    def count(self):
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queued(self):
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    def request(self):
        """Ask for a slot; returns an event that fires once granted."""
        self._account()
        req = Request(self)
        self._waiting.append(req)
        self._grant()
        return req

    def release(self, request):
        """Return a previously-granted slot."""
        self._account()
        try:
            self._users.remove(request)
        except ValueError:
            # Releasing an ungranted request cancels it instead.
            try:
                self._waiting.remove(request)
                return
            except ValueError:
                raise SimulationError(
                    f"release of request not held on {self.name!r}"
                ) from None
        self._grant()

    @contextmanager
    def held(self):
        """Context manager for use inside processes::

            with resource.held() as req:
                yield req          # wait for the grant
                yield engine.timeout(service_time)

        The slot is released when the block exits (even on error).
        """
        req = self.request()
        try:
            yield req
        finally:
            self.release(req)

    def utilisation(self, elapsed=None):
        """Fraction of capacity-time spent busy since creation."""
        self._account()
        horizon = elapsed if elapsed is not None else self.engine.now
        if horizon <= 0:
            return 0.0
        return self.busy_time / (horizon * self.capacity)

    # -- internals -----------------------------------------------------------
    def _account(self):
        now = self.engine.now
        self.busy_time += len(self._users) * (now - self._last_change)
        self._last_change = now

    def _grant(self):
        while self._waiting and len(self._users) < self.capacity:
            req = self._waiting.popleft()
            self._users.append(req)
            req.succeed(req)
