"""Counted resources with FIFO queueing.

A :class:`Resource` models a server with a fixed number of identical
slots — a CPU handling NetMsgServer messages, a disk arm, a half-duplex
link.  Processes ``yield resource.request()`` to acquire a slot and call
``resource.release(request)`` when done; contention produces queueing
delay, which is how transfer-phase elapsed times emerge in the testbed
simulation.
"""

from collections import deque

from repro.sim.errors import SimulationError
from repro.sim.events import Event, PENDING


class Preempted(Exception):
    """Raised in a request holder evicted by :meth:`Resource.preempt`."""


class _Held:
    """Hand-rolled context manager for :meth:`Resource.held`.

    Workload jobs enter/exit one of these per trace step, so the
    generator machinery of ``contextlib.contextmanager`` is measurable
    engine time; a plain slotted class is several times cheaper.
    """

    __slots__ = ("resource", "request")

    def __init__(self, resource):
        self.resource = resource
        self.request = None

    def __enter__(self):
        self.request = self.resource.request()
        return self.request

    def __exit__(self, exc_type, exc, tb):
        self.resource.release(self.request)
        return False


class Request(Event):
    """Event returned by :meth:`Resource.request`; fires when granted.

    Created once per slot acquisition — the constructor inlines
    ``Event.__init__`` (like :class:`~repro.sim.events.Timeout` does)
    because workload jobs acquire a slot per trace step.
    """

    __slots__ = ("resource",)

    def __init__(self, resource):
        self.engine = resource.engine
        self.callbacks = []
        self._value = PENDING
        self._ok = None
        self._defused = False
        self.resource = resource


class Resource:
    """``capacity`` identical slots granted in FIFO order."""

    def __init__(self, engine, capacity=1, name=None):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.name = name or "resource"
        self._waiting = deque()
        self._users = []
        #: Total simulated time slots have spent busy (for utilisation).
        self.busy_time = 0.0
        self._last_change = engine.now

    def __repr__(self):
        return (
            f"<Resource {self.name} users={len(self._users)}/{self.capacity} "
            f"queued={len(self._waiting)}>"
        )

    @property
    def count(self):
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queued(self):
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    def request(self):
        """Ask for a slot; returns an event that fires once granted."""
        self._account()
        req = Request(self)
        self._waiting.append(req)
        self._grant()
        return req

    def release(self, request):
        """Return a previously-granted slot."""
        self._account()
        try:
            self._users.remove(request)
        except ValueError:
            # Releasing an ungranted request cancels it instead.
            try:
                self._waiting.remove(request)
                return
            except ValueError:
                raise SimulationError(
                    f"release of request not held on {self.name!r}"
                ) from None
        self._grant()

    def held(self):
        """Context manager for use inside processes::

            with resource.held() as req:
                yield req          # wait for the grant
                yield engine.timeout(service_time)

        The slot is released when the block exits (even on error).
        """
        return _Held(self)

    def utilisation(self, elapsed=None):
        """Fraction of capacity-time spent busy since creation."""
        self._account()
        horizon = elapsed if elapsed is not None else self.engine.now
        if horizon <= 0:
            return 0.0
        return self.busy_time / (horizon * self.capacity)

    # -- internals -----------------------------------------------------------
    def _account(self):
        now = self.engine._now
        self.busy_time += len(self._users) * (now - self._last_change)
        self._last_change = now

    def _grant(self):
        while self._waiting and len(self._users) < self.capacity:
            req = self._waiting.popleft()
            self._users.append(req)
            req.succeed(req)
