"""Event tracing for the simulation kernel.

Attach a :class:`TraceLog` to an :class:`~repro.sim.engine.Engine` to
capture every processed event with its simulated time — the tool for
answering "why did this trial deadlock / take this long?" without
scattering prints through server loops.

>>> from repro.sim import Engine
>>> eng = Engine()
>>> log = TraceLog.attach(eng, capacity=100)
>>> _ = eng.timeout(1.5)
>>> eng.run()
>>> log.entries[-1].time
1.5
"""

from collections import deque, namedtuple

TraceEntry = namedtuple("TraceEntry", "time kind detail")
TraceEntry.__doc__ = "One processed event: when, what kind, description."


class TraceLog:
    """Bounded in-memory log of processed events."""

    def __init__(self, capacity=10_000, clock=None):
        self.entries = deque(maxlen=capacity)
        self._clock = clock
        self._engine = None

    @classmethod
    def attach(cls, engine, capacity=10_000):
        """Create a log and register it as *an* engine observer.

        Joins the engine's observer fan-out list, so attaching never
        clobbers an observer someone else installed (and vice versa).
        """
        log = cls(capacity=capacity, clock=lambda: engine.now)
        log._engine = engine
        engine.add_observer(log.observe)
        return log

    def detach(self):
        """Stop observing; other installed observers are untouched."""
        if self._engine is not None:
            self._engine.remove_observer(self.observe)
            self._engine = None

    def observe(self, now, event):
        """Engine callback: record one processed event."""
        self.entries.append(
            TraceEntry(now, type(event).__name__, self._describe(event))
        )

    @staticmethod
    def _describe(event):
        name = getattr(event, "name", None)
        if name is not None:
            return name
        delay = getattr(event, "delay", None)
        if delay is not None:
            return f"delay={delay}"
        return ""

    def record(self, kind, detail=""):
        """Manual entry (component-level annotations)."""
        now = self._clock() if self._clock else 0.0
        self.entries.append(TraceEntry(now, kind, detail))

    def of_kind(self, kind):
        """Entries of one kind, in order."""
        return [entry for entry in self.entries if entry.kind == kind]

    def between(self, start, end):
        """Entries with start <= time < end."""
        return [
            entry for entry in self.entries if start <= entry.time < end
        ]

    def format(self, limit=50):
        """The last ``limit`` entries as readable lines."""
        tail = list(self.entries)[-limit:]
        return "\n".join(
            f"{entry.time:12.6f}  {entry.kind:<12} {entry.detail}"
            for entry in tail
        )

    def __len__(self):
        return len(self.entries)
