"""One-shot events: the synchronisation primitive of the kernel.

An :class:`Event` moves through three states: *pending* (created, not yet
triggered), *triggered* (scheduled on the engine queue with a value or an
error) and *processed* (its callbacks have run).  Processes wait on events
by ``yield``-ing them; the engine resumes the process when the event is
processed.
"""

from repro.sim.errors import SimulationError

PENDING = object()


class Event:
    """A one-shot occurrence that other activities can wait for.

    Parameters
    ----------
    engine:
        The :class:`~repro.sim.engine.Engine` this event belongs to.
    """

    __slots__ = ("engine", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, engine):
        self.engine = engine
        #: Callables invoked (with this event) once the event is processed.
        self.callbacks = []
        self._value = PENDING
        self._ok = None
        self._defused = False

    def __repr__(self):
        state = "pending" if not self.triggered else ("ok" if self._ok else "failed")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"

    @property
    def triggered(self):
        """True once the event has been scheduled with a value or error."""
        return self._value is not PENDING

    @property
    def processed(self):
        """True once callbacks have been invoked."""
        return self.callbacks is None

    @property
    def ok(self):
        """True if the event succeeded.  Only meaningful once triggered."""
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self):
        """The value (or exception instance) the event was triggered with."""
        if self._value is PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    def succeed(self, value=None, priority=None):
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.engine.schedule(self, 0.0, priority)
        return self

    def fail(self, exception, priority=None):
        """Trigger the event with an exception.

        The exception is re-raised inside every process waiting on the
        event.  If nothing ever waits, the engine raises it at the end of
        the run (unless :meth:`defused` was called), so failures never
        pass silently.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.engine.schedule(self, 0.0, priority)
        return self

    def trigger(self, event):
        """Trigger this event with the state of another (for chaining)."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = event._ok
        self._value = event._value
        self.engine.schedule(self)
        return self

    def defuse(self):
        """Mark a failed event as handled so the engine won't re-raise it."""
        self._defused = True

    def cancel(self):
        """Cancel this scheduled event (O(1) mark; it will never fire).

        Delegates to :meth:`Engine.cancel
        <repro.sim.engine.Engine.cancel>` — see there for semantics.
        """
        self.engine.cancel(self)

    # -- engine interface -------------------------------------------------
    def _process(self):
        """Run callbacks; called by the engine when the event is popped."""
        callbacks, self.callbacks = self.callbacks, None
        for callback in callbacks:
            callback(self)
        if not self._ok and not self._defused:
            raise self._value


class Timeout(Event):
    """An event that fires after a fixed simulated delay.

    Born triggered: the constructor inlines ``Event.__init__`` plus the
    succeed-and-schedule sequence (timeouts are the single most common
    event on the engine hot path, so the two extra calls matter).
    """

    __slots__ = ("delay",)

    def __init__(self, engine, delay, value=None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.engine = engine
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self.delay = delay
        engine.schedule(self, delay)

    def __repr__(self):
        return f"<Timeout delay={self.delay}>"


class Condition(Event):
    """Waits for a boolean combination of other events.

    The condition succeeds with a dict mapping each *triggered* constituent
    event to its value.  If any constituent fails before the condition is
    met, the condition fails with that exception.
    """

    __slots__ = ("_events", "_evaluate", "_count")

    def __init__(self, engine, evaluate, events):
        super().__init__(engine)
        self._evaluate = evaluate
        self._events = tuple(events)
        self._count = 0
        for event in self._events:
            if event.engine is not engine:
                raise SimulationError("events from different engines")
        # Register after validation so partial registration can't happen.
        for event in self._events:
            if event.processed:
                self._check(event)
            else:
                event.callbacks.append(self._check)
        if not self._events and not self.triggered:
            self.succeed({})

    def _collect_values(self):
        # Only events whose callbacks have run count as "happened";
        # Timeouts are triggered from birth but have not occurred yet.
        return {e: e._value for e in self._events if e.processed}

    def _check(self, event):
        if self.triggered:
            return
        self._count += 1
        if not event._ok:
            event.defuse()
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self.succeed(self._collect_values())


class AllOf(Condition):
    """Succeeds once *all* constituent events have succeeded."""

    __slots__ = ()

    def __init__(self, engine, events):
        super().__init__(engine, lambda events, count: count == len(events), events)


class AnyOf(Condition):
    """Succeeds once *any* constituent event has succeeded."""

    __slots__ = ()

    def __init__(self, engine, events):
        super().__init__(engine, lambda events, count: count >= 1, events)
