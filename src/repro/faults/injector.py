"""The FaultInjector: executes one FaultPlan inside one world.

The injector is the plan's runtime half.  It installs itself as every
link's fault model (links ask :meth:`should_drop` per fragment), runs
one engine process per scheduled crash/recovery, and counts what it
broke in the world's metrics registry:

* ``link_drops_total{reason}`` — fragments eaten, by cause
  (``loss`` / ``partition`` / ``crash``).
* ``host_crashes_total{host}`` / ``host_recoveries_total{host}``.

Determinism: loss draws come from one named RNG stream handed in by
the world (derived from the master seed), and crash scripts are plain
timeout-driven processes, so a seeded run replays its failures exactly.
"""


class FaultInjector:
    """Seeded, simulated-time fault engine for one world."""

    def __init__(self, plan, engine, rng, hosts, links, registry):
        self.plan = plan
        self.engine = engine
        self.rng = rng
        #: host name -> Host.
        self.hosts = dict(hosts)
        self.registry = registry
        self._drops = registry.counter("link_drops_total", labels=("reason",))
        self._crashes = registry.counter("host_crashes_total", labels=("host",))
        self._recoveries = registry.counter(
            "host_recoveries_total", labels=("host",)
        )
        for link in links:
            link.faults = self
        for host in self.hosts.values():
            host.fault_injector = self
        for crash in plan.crashes:
            if crash.host not in self.hosts:
                from repro.faults.plan import FaultPlanError

                raise FaultPlanError(
                    f"crash names unknown host {crash.host!r}; "
                    f"world has {sorted(self.hosts)}"
                )
            self.engine.process(
                self._crash_script(crash), name=f"fault-crash-{crash.host}"
            )

    def __repr__(self):
        crashed = sorted(
            name for name, host in self.hosts.items() if host.crashed
        )
        return f"<FaultInjector plan={self.plan!r} crashed={crashed}>"

    # -- crash scripts -----------------------------------------------------------
    def _crash_script(self, crash):
        host = self.hosts[crash.host]
        if crash.at > self.engine.now:
            yield self.engine.timeout(crash.at - self.engine.now)
        host.crash()
        self._crashes.inc(1, host=crash.host)
        if crash.recover_at is not None:
            yield self.engine.timeout(crash.recover_at - self.engine.now)
            host.recover()
            self._recoveries.inc(1, host=crash.host)

    # -- per-fragment drop decision ----------------------------------------------
    def should_drop(self, source_host, dest_host, now):
        """Reason string if this fragment dies on the wire, else None.

        Checked in severity order — a crashed endpoint loses the
        fragment regardless of loss rates, a partition regardless of
        the RNG — so the loss stream is only consulted (and advanced)
        when a probabilistic rule actually governs the fragment.
        """
        if source_host.crashed or dest_host.crashed:
            return "crash"
        for partition in self.plan.partitions:
            if partition.severs(source_host.name, dest_host.name, now):
                return "partition"
        for rule in self.plan.loss:
            if rule.matches(source_host.name, dest_host.name, now):
                if self.rng.random() < rule.rate:
                    return "loss"
                return None
        return None

    def record_drop(self, reason):
        """Count one eaten fragment (called by the link)."""
        self._drops.inc(1, reason=reason)

    def drops(self, reason=None):
        """Total fragments dropped (optionally for one reason)."""
        if reason is not None:
            return self._drops.value(reason=reason)
        return sum(child.value for _, child in self._drops.items())
