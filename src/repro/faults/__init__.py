"""Fault injection: deterministic failures for the migration testbed.

The paper's copy-on-reference design trades transfer speed for
*residual dependencies* — a migrated process keeps faulting pages back
from its source host, so a crashed source or a lossy wire strands it.
This package makes that failure surface real and measurable:

* :class:`FaultPlan` (:mod:`repro.faults.plan`) — a JSON-loadable,
  seeded schedule of fragment loss, link partitions, and host crashes.
* :class:`FaultInjector` (:mod:`repro.faults.injector`) — executes a
  plan inside one world: links consult it per fragment, crash scripts
  run as engine processes.
* :mod:`repro.faults.errors` — the failure vocabulary
  (:class:`TransportError`, :class:`ResidualDependencyError`) shared
  by the network, pager, and migration layers.

The machinery that *survives* these faults lives with the layers it
hardens: the reliable transport in
:class:`~repro.net.netmsgserver.NetMsgServer`, abort/rollback in
:class:`~repro.migration.manager.MigrationManager`, and the
residual-dependency flusher in :mod:`repro.cor.flusher`.
"""

from repro.faults.errors import ResidualDependencyError, TransportError
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    Crash,
    FaultPlan,
    FaultPlanError,
    FlushConfig,
    LossRule,
    Partition,
)

__all__ = [
    "Crash",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "FlushConfig",
    "LossRule",
    "Partition",
    "ResidualDependencyError",
    "TransportError",
]
