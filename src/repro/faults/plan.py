"""Fault plans: deterministic schedules of injected failures.

A :class:`FaultPlan` describes *what goes wrong and when* in one
simulated world — per-link fragment loss, link partitions over time
windows, host crashes and recoveries, and the residual-dependency
flusher configuration.  Plans are plain data: they load from JSON
(``repro migrate ... --faults PLAN.json``), round-trip through
:meth:`FaultPlan.to_dict`, and carry no simulation state, so the same
plan can drive many independent worlds.

Randomness (the per-fragment loss draw) comes from one named stream of
the world's :class:`~repro.sim.rng.SeededStreams`, so a seeded run
replays its drops exactly.
"""

import json
from dataclasses import dataclass
from typing import Optional


class FaultPlanError(Exception):
    """A malformed fault plan (bad JSON shape, impossible schedule)."""


def _window_open(start, end, now):
    """Whether ``now`` falls inside the [start, end) event window."""
    return now >= start and (end is None or now < end)


@dataclass(frozen=True)
class LossRule:
    """Drop each matching fragment with probability ``rate``.

    ``source``/``dest`` of ``None`` match any host; the window is
    ``[start, end)`` with ``end=None`` meaning forever.
    """

    rate: float
    source: Optional[str] = None
    dest: Optional[str] = None
    start: float = 0.0
    end: Optional[float] = None

    def __post_init__(self):
        if not 0.0 <= self.rate <= 1.0:
            raise FaultPlanError(f"loss rate must be in [0, 1], got {self.rate}")
        if self.end is not None and self.end < self.start:
            raise FaultPlanError(
                f"loss window ends ({self.end}) before it starts ({self.start})"
            )

    def matches(self, source_name, dest_name, now):
        """Whether this rule governs a fragment on the wire right now."""
        if self.source is not None and self.source != source_name:
            return False
        if self.dest is not None and self.dest != dest_name:
            return False
        return _window_open(self.start, self.end, now)


@dataclass(frozen=True)
class Partition:
    """Sever all traffic between hosts ``a`` and ``b`` during a window.

    Partitions are symmetric: fragments in either direction are lost.
    """

    a: str
    b: str
    start: float = 0.0
    end: Optional[float] = None

    def __post_init__(self):
        if self.end is not None and self.end < self.start:
            raise FaultPlanError(
                f"partition ends ({self.end}) before it starts ({self.start})"
            )

    def severs(self, source_name, dest_name, now):
        """Whether this partition eats a fragment on the wire now."""
        pair = {source_name, dest_name}
        return pair == {self.a, self.b} and _window_open(self.start, self.end, now)


@dataclass(frozen=True)
class Crash:
    """Host ``host`` dies at ``at``; optionally rejoins at ``recover_at``.

    A crashed host neither sends nor receives: every fragment touching
    it is dropped, which the reliable transport eventually surfaces as
    a :class:`~repro.faults.errors.TransportError`.
    """

    host: str
    at: float
    recover_at: Optional[float] = None

    def __post_init__(self):
        if self.at < 0:
            raise FaultPlanError(f"crash time must be >= 0, got {self.at}")
        if self.recover_at is not None and self.recover_at <= self.at:
            raise FaultPlanError(
                f"recovery ({self.recover_at}) must follow the crash ({self.at})"
            )


@dataclass(frozen=True)
class FlushConfig:
    """Residual-dependency flusher knobs (see :mod:`repro.cor.flusher`)."""

    enabled: bool = False
    batch_pages: int = 16
    interval_s: float = 0.05
    #: Push batches kept in flight per pump (1 = stop-and-wait).
    pipeline: int = 1

    def __post_init__(self):
        if self.batch_pages < 1:
            raise FaultPlanError(
                f"flush batch must be >= 1 page, got {self.batch_pages}"
            )
        if self.interval_s < 0:
            raise FaultPlanError(
                f"flush interval must be >= 0, got {self.interval_s}"
            )
        if self.pipeline < 1:
            raise FaultPlanError(
                f"flush pipeline must be >= 1, got {self.pipeline}"
            )


class FaultPlan:
    """One complete failure schedule for a simulated world."""

    #: Name of the SeededStreams stream the loss draws come from.
    RNG_STREAM = "faults"

    def __init__(self, loss=(), partitions=(), crashes=(), flush=None):
        self.loss = tuple(loss)
        self.partitions = tuple(partitions)
        self.crashes = tuple(crashes)
        self.flush = flush or FlushConfig()

    def __repr__(self):
        return (
            f"<FaultPlan loss={len(self.loss)} partitions={len(self.partitions)} "
            f"crashes={len(self.crashes)} flush={self.flush.enabled}>"
        )

    @property
    def empty(self):
        """True when the plan injects nothing (flusher may still run)."""
        return not (self.loss or self.partitions or self.crashes)

    # -- (de)serialisation -------------------------------------------------------
    @classmethod
    def from_dict(cls, data):
        """Build a plan from the JSON-shaped mapping ``data``."""
        if not isinstance(data, dict):
            raise FaultPlanError(f"fault plan must be an object, got {type(data).__name__}")
        known = {"loss", "partitions", "crashes", "flush"}
        unknown = set(data) - known
        if unknown:
            raise FaultPlanError(
                f"unknown fault-plan keys {sorted(unknown)}; expected {sorted(known)}"
            )
        try:
            loss = [LossRule(**entry) for entry in data.get("loss", ())]
            partitions = [Partition(**entry) for entry in data.get("partitions", ())]
            crashes = [Crash(**entry) for entry in data.get("crashes", ())]
            flush_data = data.get("flush")
            flush = FlushConfig(**flush_data) if flush_data else None
        except TypeError as error:
            raise FaultPlanError(f"malformed fault plan entry: {error}") from None
        return cls(loss=loss, partitions=partitions, crashes=crashes, flush=flush)

    @classmethod
    def from_json(cls, path):
        """Load a plan from a JSON file."""
        with open(path, "r", encoding="utf-8") as handle:
            try:
                data = json.load(handle)
            except json.JSONDecodeError as error:
                raise FaultPlanError(f"{path}: invalid JSON: {error}") from None
        return cls.from_dict(data)

    def to_dict(self):
        """The JSON-shaped mapping this plan round-trips through."""
        return {
            "loss": [vars(rule).copy() for rule in self.loss],
            "partitions": [vars(part).copy() for part in self.partitions],
            "crashes": [vars(crash).copy() for crash in self.crashes],
            "flush": vars(self.flush).copy(),
        }
