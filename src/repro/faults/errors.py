"""The failure vocabulary of the fault-injection subsystem.

These exceptions sit below every layer that can observe an injected
fault, so they live in a leaf module with no intra-package imports:
the network raises :class:`TransportError`, the pager converts an
unreachable backing host into :class:`ResidualDependencyError`, and the
MigrationManager wraps an aborted transfer in its own
:class:`~repro.migration.manager.MigrationAborted`.
"""


class TransportError(Exception):
    """Reliable delivery gave up: the peer crashed or loss persisted
    past the retransmission budget."""


class ResidualDependencyError(Exception):
    """A migrated process demanded an owed page whose backing host is
    gone — the paper's central copy-on-reference caveat made concrete.

    The destination kernel marks the process ``KILLED`` before raising
    this; there is no way to rematerialise the page.
    """
