"""Legacy setuptools shim.

``pip install -e .`` uses pyproject.toml; this file exists so fully
offline environments without the ``wheel`` package can still do
``python setup.py develop``.
"""

from setuptools import setup

setup()
