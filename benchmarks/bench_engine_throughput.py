"""Engine-throughput baseline: how many events/s does dispatch sustain?

The ROADMAP's "make the engine run as fast as the hardware allows" item
(target ≥10x over the ~70k events/s observed at cluster scale) needs a
committed baseline to beat and a cost-attribution to steer by.  This
benchmark runs the seeded stress harness across several shapes — small,
wide (many hosts), deep (many processes per host), and serving-heavy —
measuring host events/s for each with the engine's own ``wall_s``
dispatch clock (two ``perf_counter`` reads per ``run()`` call, nothing
per event), then repeats the reference shape under the
:class:`~repro.obs.prof.EngineProfiler` to record the top-5
profiler-attributed cost centers.  The artifact lands in
``BENCH_engine_throughput.json`` at the repo root; CI re-runs the bench
and **fails** on a >10% events/s regression against the committed file
(and, unconditionally, on any determinism-hash divergence).  Host
timing is machine-dependent but a 10% tolerance absorbs runner noise;
the two-lane queue work showed real regressions land well past it.

Run directly (writes the JSON artifact)::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine_throughput.py
"""

import json
import os

from repro.cluster import StressConfig, run_stress
from repro.obs.prof import EngineProfiler, profiled

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
ARTIFACT = os.path.join(REPO_ROOT, "BENCH_engine_throughput.json")

SEED = 7
#: Repeats per shape; the best run is reported (throughput is a
#: capability number — slower repeats measure host noise, not the code).
REPEATS = 3
#: The stress shapes swept.  ``reference`` is the profiled shape and the
#: one the events/s regression guard reads.
SHAPES = (
    ("small", dict(hosts=4, procs=8)),
    ("reference", dict(hosts=16, procs=64)),
    ("wide", dict(hosts=32, procs=64)),
    ("batched", dict(hosts=16, procs=64, strategy="adaptive",
                     batch=8, pipeline=4)),
    ("serving", dict(hosts=4, procs=3, services=("kv", "matmul", "stream"),
                     clients_per_service=2, requests_per_client=40)),
)
PROFILED_SHAPE = "reference"
TOP_CENTERS = 5


def run_shape(kwargs):
    """Best-of-N events/s for one stress shape.

    The engine's ``wall_s`` counts only dispatch-loop time, so the
    events/s figure excludes world construction and result packing.
    """
    best = None
    for _ in range(REPEATS):
        config = StressConfig(seed=SEED, **kwargs)
        if kwargs.get("services"):
            from repro.serve import run_serve

            result = run_serve(config)
        else:
            result = run_stress(config)
        engine = result.obs._engine
        events = engine.dispatched
        wall_s = engine.wall_s
        rate = events / wall_s if wall_s > 0 else 0.0
        row = {
            "events_dispatched": events,
            "engine_wall_s": round(wall_s, 6),
            "events_per_s": round(rate, 1),
            "verified": result.verified,
            "determinism_hash": result.determinism_hash,
        }
        if best is None or row["events_per_s"] > best["events_per_s"]:
            best = row
    return best


def profile_shape(kwargs):
    """Top cost centers for one shape under the engine profiler."""
    profiler = EngineProfiler()
    with profiled(profiler):
        config = StressConfig(seed=SEED, **kwargs)
        run_stress(config)
    report = profiler.report()
    # The profiler's own bookkeeping row is excluded from the top-N:
    # the baseline records what the *engine* spends its time on.  Its
    # share is reported separately so the overhead stays visible.
    engine_rows = [
        row for row in report["cost_centers"]
        if row["subsystem"] != "profiler"
    ]
    overhead = sum(
        row["self_s"] for row in report["cost_centers"]
        if row["subsystem"] == "profiler"
    )
    centers = [
        {
            "subsystem": row["subsystem"],
            "handler": row["handler"],
            "event": row["event"],
            "count": row["count"],
            "self_s": round(row["self_s"], 6),
            "share": round(row["share"], 4),
            "alloc_blocks": row["alloc_blocks"],
        }
        for row in engine_rows[:TOP_CENTERS]
    ]
    queue = report["queue"]

    def lane(stats):
        row = {
            "pushes": stats["pushes"],
            "push_s": round(stats["push_s"], 6),
            "pops": stats["pops"],
            "pop_s": round(stats["pop_s"], 6),
            "peak_depth": stats["peak_depth"],
        }
        if "rolls" in stats:
            row["rolls"] = stats["rolls"]
        return row

    return {
        "coverage": round(report["coverage"], 4),
        "profiler_overhead_share": round(
            overhead / report["engine_wall_s"], 4
        ) if report["engine_wall_s"] else 0.0,
        "peak_queue_depth": queue["peak_depth"],
        "queue_push_s": round(queue["push_s"], 6),
        "queue_pop_s": round(queue["pop_s"], 6),
        "queue_skipped": queue["skipped"],
        "queue_lanes": {
            "near": lane(queue["near"]),
            "far": lane(queue["far"]),
        },
        "top_cost_centers": centers,
    }


def measure():
    """The artifact dict: one row per shape + the profiled reference."""
    rows = []
    for name, kwargs in SHAPES:
        row = run_shape(kwargs)
        row["shape"] = name
        row["config"] = {
            key: list(value) if isinstance(value, tuple) else value
            for key, value in kwargs.items()
        }
        rows.append(row)
    profiled_kwargs = dict(SHAPES)[PROFILED_SHAPE]
    return {
        "seed": SEED,
        "repeats": REPEATS,
        "rows": rows,
        "profiled_shape": PROFILED_SHAPE,
        "profile": profile_shape(profiled_kwargs),
    }


def reference_rate(artifact):
    """The guarded number: reference-shape events/s."""
    return next(
        row["events_per_s"] for row in artifact["rows"]
        if row["shape"] == PROFILED_SHAPE
    )


def test_shapes_dispatch_and_verify():
    """Every shape runs verified and the dispatch clock ticks."""
    for _, kwargs in SHAPES:
        row = run_shape(kwargs)
        assert row["verified"]
        assert row["events_dispatched"] > 0
        assert row["events_per_s"] > 0


def test_profiler_attributes_reference_shape():
    """The profiled reference shape attributes ≥95% of wall time."""
    profile = profile_shape(dict(SHAPES)[PROFILED_SHAPE])
    assert profile["coverage"] >= 0.95
    assert len(profile["top_cost_centers"]) == TOP_CENTERS
    lanes = profile["queue_lanes"]
    # Every dispatch is a near-lane pop; far-lane pops happen in rolls.
    assert lanes["near"]["pops"] > 0
    assert lanes["far"]["rolls"] > 0
    assert lanes["far"]["pops"] <= lanes["far"]["pushes"]
    assert profile["peak_queue_depth"] >= max(
        lanes["near"]["peak_depth"], lanes["far"]["peak_depth"]
    )


def main():
    artifact = measure()
    with open(ARTIFACT, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2)
        handle.write("\n")
    print(json.dumps(artifact, indent=2))
    print(f"reference events/s: {reference_rate(artifact):,.0f} "
          f"(profiler coverage "
          f"{100 * artifact['profile']['coverage']:.1f}%)")


if __name__ == "__main__":
    main()
