"""Table 4-1: address-space composition.

Times the construction of all seven representative pre-migration
states (sparse 4 GB spaces included) and regenerates the table.
"""

from benchmarks.conftest import run_once
from repro.experiments.paper_data import TABLE_4_1
from repro.experiments.tables import render, table_4_1
from repro.testbed import Testbed
from repro.workloads.builder import build_process
from repro.workloads.registry import WORKLOADS


def build_all_seven():
    world = Testbed(seed=1987).world()
    return [
        build_process(world.source, spec, world.streams)
        for spec in WORKLOADS.values()
    ]


def test_table_4_1(benchmark, artifact):
    built = run_once(benchmark, build_all_seven)
    assert len(built) == 7

    rows = table_4_1()
    for row in rows:
        paper = TABLE_4_1[row["workload"]]
        assert (row["real_bytes"], row["realz_bytes"], row["total_bytes"]) == paper[:3]
    artifact("table_4_1", render(rows))
