"""Figure 4-5: byte transfer-rate timelines for Lisp-Del.

Times the timeline binning over the largest link-record set and
renders the three strategy panels as ASCII rate charts.
"""

from benchmarks.conftest import run_once
from repro.experiments.figures import figure_4_5
from repro.metrics.timeline import Timeline


def test_figure_4_5(benchmark, artifact, matrix):
    copy_result = matrix.copy("lisp-del")  # prefill outside the timer

    def bin_timeline():
        return Timeline(1.0).bins(copy_result.link_records)

    bins = run_once(benchmark, bin_timeline)
    assert bins

    from repro.metrics.charts import rate_panel

    panels = figure_4_5(matrix, bin_seconds=5.0)
    lines = []
    for strategy, series in panels.items():
        lines.append(f"== {strategy} ==")
        lines.append(rate_panel(series, width=50))
        lines.append("")
    artifact("figure_4_5", "\n".join(lines))

    # Signature checks: copy bursts early; IOU spreads fault traffic.
    copy_series = panels["pure-copy"]
    iou_series = panels["pure-iou"]
    assert sum(f for _, f, _ in copy_series) == 0
    assert sum(f for _, f, _ in iou_series) > 0
