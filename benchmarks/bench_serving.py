"""During-migration request-latency benchmark (docs/serving.md).

Runs the standard serving mix (kv + matmul + stream, one process each,
three hosts, three migrations under live traffic, seed 11) once per
transfer arm and records per-arm, per-service during-migration latency
percentiles plus drop/retry counts.  Deadlines are disabled so every
request completes and the percentiles measure brownout depth directly
— no survivorship bias from requests that expired while queued.

The headline claim checked here: batched/pipelined demand paging
(batch=8/pipeline=4, PR 5's prefetch windows) beats the serial
pure-IOU protocol on during-migration p99 for the scan-heavy matmul
service by >= 1.5x, because a freshly inserted server re-faulting its
weight stripes sequentially is exactly the prefetch-window best case.
The adaptive strategy must beat serial pure-IOU there too.

The artifact lands in ``BENCH_serving.json`` at the repo root.

Run directly (writes the JSON artifact)::

    PYTHONPATH=src python benchmarks/bench_serving.py

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_serving.py
"""

import json
import os
import time

from repro.cluster.stress import StressConfig
from repro.serve import run_serve

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
ARTIFACT = os.path.join(REPO_ROOT, "BENCH_serving.json")

SEED = 11
SERVICES = ("kv", "matmul", "stream")
#: (arm label, strategy, batch, pipeline) — serial pure-IOU first.
ARMS = (
    ("pure-iou-serial", "pure-iou", 1, 1),
    ("pure-iou-batched", "pure-iou", 8, 4),
    ("adaptive-batched", "adaptive", 8, 4),
)
#: The service the headline bar is judged on, and the bar itself.
HEADLINE_SERVICE = "matmul"
HEADLINE_TARGET = 1.5


def arm_config(strategy, batch, pipeline):
    return StressConfig(
        hosts=3, procs=3, seed=SEED, migrations=3,
        arrival="uniform", rate_per_s=1.0, inflight_cap=2,
        strategy=strategy, batch=batch, pipeline=pipeline,
        services=SERVICES, deadline_s=0.0, retry_budget=0,
    )


def run_arm(strategy, batch, pipeline):
    """One arm: the ServingResult plus its wall-clock cost."""
    started = time.perf_counter()
    result = run_serve(arm_config(strategy, batch, pipeline))
    return result, time.perf_counter() - started


def _row(arm, strategy, batch, pipeline, result, wall_s):
    summary = result.latency_summary()
    per_service = {
        kind: {
            "during_count": block["during_migration"]["count"],
            "during_p50_s": block["during_migration"]["p50"],
            "during_p99_s": block["during_migration"]["p99"],
            "overall_p99_s": block["overall"]["p99"],
        }
        for kind, block in summary["per_service"].items()
    }
    return {
        "arm": arm,
        "strategy": strategy,
        "batch": batch,
        "pipeline": pipeline,
        "requests": dict(sorted(result.counts.items())),
        "during_p50_s": summary["during_migration"]["p50"],
        "during_p99_s": summary["during_migration"]["p99"],
        "during_p999_s": summary["during_migration"]["p999"],
        "during_count": summary["during_migration"]["count"],
        "overall_p99_s": summary["overall"]["p99"],
        "per_service": per_service,
        "completed_migrations": result.completed_migrations,
        "bytes_total": result.bytes_total,
        "makespan_s": round(result.makespan_s, 6),
        "verified": result.verified,
        "determinism_hash": result.determinism_hash,
        "wall_s": round(wall_s, 3),
    }


def measure():
    """The artifact dict: one row per arm plus the headline ratio."""
    rows = []
    by_arm = {}
    for arm, strategy, batch, pipeline in ARMS:
        result, wall_s = run_arm(strategy, batch, pipeline)
        row = _row(arm, strategy, batch, pipeline, result, wall_s)
        rows.append(row)
        by_arm[arm] = row

    def headline_p99(row):
        return row["per_service"][HEADLINE_SERVICE]["during_p99_s"]

    serial = headline_p99(by_arm["pure-iou-serial"])
    improvements = {
        arm: round(serial / headline_p99(row), 3)
        for arm, row in by_arm.items()
        if arm != "pure-iou-serial"
    }
    return {
        "scenario": {
            "seed": SEED,
            "services": list(SERVICES),
            "hosts": 3,
            "procs": 3,
            "migrations": 3,
            "deadline_s": 0.0,
            "arms": [list(arm) for arm in ARMS],
            "headline_service": HEADLINE_SERVICE,
        },
        "rows": rows,
        "headline_target": HEADLINE_TARGET,
        "during_p99_improvement": improvements,
    }


def test_batched_demand_paging_beats_serial_during_migration():
    """The acceptance bar: batch=8/pipeline=4 cuts matmul's
    during-migration p99 by >= 1.5x vs the serial per-page protocol."""
    serial, _ = run_arm("pure-iou", 1, 1)
    batched, _ = run_arm("pure-iou", 8, 4)
    assert serial.verified and batched.verified
    serial_p99 = serial.latency_percentile(
        0.99, kind=HEADLINE_SERVICE, during=True
    )
    batched_p99 = batched.latency_percentile(
        0.99, kind=HEADLINE_SERVICE, during=True
    )
    assert serial_p99 >= HEADLINE_TARGET * batched_p99


def test_adaptive_also_beats_serial_during_migration():
    serial, _ = run_arm("pure-iou", 1, 1)
    adaptive, _ = run_arm("adaptive", 8, 4)
    assert serial.verified and adaptive.verified
    serial_p99 = serial.latency_percentile(
        0.99, kind=HEADLINE_SERVICE, during=True
    )
    adaptive_p99 = adaptive.latency_percentile(
        0.99, kind=HEADLINE_SERVICE, during=True
    )
    assert adaptive_p99 < serial_p99


def test_every_arm_replays_bit_stably():
    """Same seed, same arm -> the same canonical hash."""
    for _arm, strategy, batch, pipeline in ARMS:
        first, _ = run_arm(strategy, batch, pipeline)
        second, _ = run_arm(strategy, batch, pipeline)
        assert first.determinism_hash == second.determinism_hash


def main():
    artifact = measure()
    with open(ARTIFACT, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2)
        handle.write("\n")
    print(json.dumps(artifact, indent=2))
    for arm, improvement in artifact["during_p99_improvement"].items():
        bar = (
            artifact["headline_target"]
            if arm == "pure-iou-batched" else 1.0
        )
        ok = improvement >= bar
        print(
            f"{arm}: {HEADLINE_SERVICE} during-migration p99 improvement "
            f"{improvement}x over pure-iou-serial "
            f"({'OK' if ok else 'UNDER TARGET'})"
        )


if __name__ == "__main__":
    main()
