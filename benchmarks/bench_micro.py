"""Micro-benchmarks: the hot paths of the simulation substrate.

These time real (wall-clock) performance of the building blocks, so
regressions in the simulator itself are visible independently of the
simulated results.
"""

import random

from repro.accent.constants import PAGE_SIZE
from repro.accent.vm.address_space import AddressSpace
from repro.accent.vm.intervals import IntervalMap
from repro.accent.vm.page import Page
from repro.sim import Engine, Store


def test_engine_event_throughput(benchmark):
    """Schedule-and-process cycles per second."""

    def thousand_timeouts():
        engine = Engine()
        for i in range(1000):
            engine.timeout(i * 0.001)
        engine.run()
        return engine.now

    result = benchmark(thousand_timeouts)
    assert result > 0


def test_process_context_switch(benchmark):
    """Ping-pong between two coroutine processes through a Store."""

    def ping_pong():
        engine = Engine()
        a_to_b, b_to_a = Store(engine), Store(engine)

        def ping():
            for _ in range(200):
                yield a_to_b.put("ball")
                yield b_to_a.get()

        def pong():
            for _ in range(200):
                yield a_to_b.get()
                yield b_to_a.put("ball")

        engine.process(ping())
        engine.process(pong())
        engine.run()

    benchmark(ping_pong)


def test_interval_map_mixed_ops(benchmark):
    rng = random.Random(42)
    ops = [
        (rng.randrange(10_000), rng.randrange(1, 64), rng.randrange(3))
        for _ in range(500)
    ]

    def churn():
        imap = IntervalMap()
        for start, length, value in ops:
            imap.add(start, start + length, value)
        return len(imap)

    assert benchmark(churn) > 0


def test_amap_construction_lisp_scale(benchmark):
    """AMap over a 4 GB space with thousands of scattered pages."""
    space = AddressSpace()
    space.validate(0, 4 * 1024**3)
    rng = random.Random(7)
    for index in sorted(rng.sample(range(1_000_000), 4000)):
        space.install_page(index, Page())

    amap = benchmark(space.amap)
    assert amap.real_bytes == 4000 * PAGE_SIZE


def test_page_cow_write_cycle(benchmark):
    def share_and_break():
        page = Page(b"original")
        page.share()
        private = page.write(0, b"modified")
        page.release()
        return private

    assert benchmark(share_and_break).data[:8] == b"modified"


def test_full_trial_wall_clock(benchmark):
    """One complete minprog pure-IOU migration trial (the end-to-end
    unit every experiment is built from)."""
    from repro.testbed import Testbed

    def trial():
        return Testbed(seed=1987).migrate("minprog", strategy="pure-iou")

    assert benchmark(trial).verified
