"""Table 4-2: resident sets.

Times resident-set extraction (the LRU bookkeeping the RS strategy
depends on) over a freshly-built representative, and regenerates the
table.
"""

from benchmarks.conftest import run_once
from repro.experiments.paper_data import TABLE_4_2
from repro.experiments.tables import render, table_4_2
from repro.testbed import Testbed
from repro.workloads.builder import build_process
from repro.workloads.registry import WORKLOADS


def resident_sets():
    world = Testbed(seed=1987).world()
    sizes = {}
    for spec in WORKLOADS.values():
        built = build_process(world.source, spec, world.streams)
        sizes[spec.name] = built.process.space.resident_bytes()
    return sizes


def test_table_4_2(benchmark, artifact):
    sizes = run_once(benchmark, resident_sets)
    for name, (paper_bytes, _, _) in TABLE_4_2.items():
        assert sizes[name] == paper_bytes

    artifact("table_4_2", render(table_4_2()))
