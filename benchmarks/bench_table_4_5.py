"""Table 4-5: address-space transfer times per strategy.

Times the heaviest transfer in the paper (Lisp-T pure-copy: ~4,300
pages through both NetMsgServers) and regenerates the table.
"""

from benchmarks.conftest import run_once
from repro.experiments.paper_data import TABLE_4_5
from repro.experiments.tables import render, table_4_5
from repro.testbed import Testbed


def lisp_t_pure_copy():
    return Testbed(seed=1987).migrate(
        "lisp-t", strategy="pure-copy", run_remote=False
    )


def test_table_4_5(benchmark, artifact, matrix):
    result = run_once(benchmark, lisp_t_pure_copy)
    paper = TABLE_4_5["lisp-t"][2]
    assert abs(result.transfer_s - paper) / paper < 0.25

    rows = table_4_5(matrix)
    for row in rows:
        assert row["pure_iou_s"] < row["rs_s"] < row["copy_s"]
    artifact("table_4_5", render(rows))
