"""Overhead of the instrumentation layer (docs/observability.md).

Times the same deterministic trial with instrumentation disabled
(the default) and enabled (``--trace``), and records the ratio in
``BENCH_obs_overhead.json`` at the repo root.  Spans, phase
attribution and engine event counting are the only extra work — the
registry is always on — so the enabled run bounds the cost of
``--trace`` and the target is <5% wall-clock overhead.

Run directly (writes the JSON artifact)::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py

or through pytest-benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_obs_overhead.py
"""

import json
import os
import time

from repro.testbed import Testbed

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
ARTIFACT = os.path.join(REPO_ROOT, "BENCH_obs_overhead.json")

#: The timed unit of work: a full verified migration with remote
#: execution and fault prefetch — every instrumented code path fires.
WORKLOAD = "lisp-del"


def run_trial(instrument):
    """One full migration trial; returns its MigrationResult."""
    bed = Testbed(seed=1987, instrument=instrument)
    return bed.migrate(WORKLOAD, strategy="pure-iou", prefetch=1)


def measure(repeats=15):
    """The artifact dict: plain vs instrumented timings + the ratio.

    The two modes are timed in alternation and summarised by their
    minima, so scheduler noise and cache warm-up hit both equally.
    """
    run_trial(False)
    run_trial(True)
    plain_times, instrumented_times = [], []
    for _ in range(repeats):
        for instrument, times in (
            (False, plain_times), (True, instrumented_times)
        ):
            started = time.perf_counter()
            run_trial(instrument)
            times.append(time.perf_counter() - started)
    plain_s = min(plain_times)
    instrumented_s = min(instrumented_times)
    overhead = instrumented_s / plain_s - 1.0
    return {
        "workload": WORKLOAD,
        "strategy": "pure-iou",
        "prefetch": 1,
        "repeats": repeats,
        "timer": "time.perf_counter, alternating, best of repeats",
        "plain_s": round(plain_s, 6),
        "instrumented_s": round(instrumented_s, 6),
        "overhead_fraction": round(overhead, 6),
        "target": "< 0.05",
    }


def test_instrumentation_is_simulation_neutral():
    """Tracing must never change what the simulation computes."""
    plain = run_trial(False)
    traced = run_trial(True)
    assert traced.transfer_s == plain.transfer_s
    assert traced.exec_s == plain.exec_s
    assert traced.bytes_total == plain.bytes_total
    assert traced.faults == plain.faults


def test_obs_overhead(benchmark):
    """Wall-clock cost of one fully instrumented trial."""
    result = benchmark(lambda: run_trial(True))
    assert result.verified


def main():
    artifact = measure()
    with open(ARTIFACT, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2)
        handle.write("\n")
    print(json.dumps(artifact, indent=2))
    status = "OK" if artifact["overhead_fraction"] < 0.05 else "OVER TARGET"
    print(f"overhead: {artifact['overhead_fraction']:+.2%} ({status})")


if __name__ == "__main__":
    main()
