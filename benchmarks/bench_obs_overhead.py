"""Overhead of the instrumentation layer (docs/observability.md).

Times the same deterministic trial three ways — instrumentation off
(the default), ``--trace`` alone, and ``--trace`` plus continuous
telemetry sampling at the default period — and records the ratios in
``BENCH_obs_overhead.json`` at the repo root:

* ``trace_overhead_fraction`` — spans, phase attribution, and engine
  event counting, measured against the plain run (the registry is
  always on).
* ``sampling_overhead_fraction`` — what the sim-time sampler adds on
  top of tracing: the tick process, gauge snapshots, windowed-merge
  and percentile-ribbon maintenance.  **This is the guarded number**:
  continuous telemetry must cost <5% (``target``).
* ``total_overhead_fraction`` — both layers against plain, for
  context.

CPU time (``time.process_time``) is the meter: the simulation is
single-threaded, so CPU time prices the instrumentation itself rather
than whatever else the machine happens to be running.

Note the denominator this trial implies: ~167 *simulated* seconds
replay in ~0.25 s of CPU, a sim:wall ratio near 700x that no real
deployment approaches, so every per-tick cost is priced ~700x harsher
here than in real time.  Keeping the guard green at that ratio is the
point — sampling must stay cheap per tick, not just per wall second.

Run directly (writes the JSON artifact)::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py

or through pytest-benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_obs_overhead.py
"""

import gc
import json
import os
import statistics
import time

from repro.obs.telemetry import DEFAULT_SAMPLE_PERIOD
from repro.testbed import Testbed

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
ARTIFACT = os.path.join(REPO_ROOT, "BENCH_obs_overhead.json")

#: The timed unit of work: a full verified migration with remote
#: execution and fault prefetch — every instrumented code path fires.
WORKLOAD = "lisp-del"


def run_trial(instrument, sample_period=0.0):
    """One full migration trial; returns its MigrationResult."""
    bed = Testbed(
        seed=1987, instrument=instrument, sample_period=sample_period,
    )
    return bed.migrate(WORKLOAD, strategy="pure-iou", prefetch=1)


#: (artifact key, instrument, sample period) per timed arm.
ARMS = (
    ("plain_s", False, 0.0),
    ("traced_s", True, 0.0),
    ("sampled_s", True, DEFAULT_SAMPLE_PERIOD),
)


def measure(repeats=25):
    """The artifact dict: per-arm timings plus the overhead ratios.

    Each repeat times the three arms back to back, and every ratio is
    taken *within* a repeat before the median is taken across repeats:
    machine-load drift on minute timescales then cancels out of the
    ratios instead of landing on whichever arm drew the noisy slot —
    the failure mode of summarising each arm by its own minimum.
    """
    for _, instrument, period in ARMS:
        run_trial(instrument, period)
    rows = []
    for _ in range(repeats):
        row = {}
        for key, instrument, period in ARMS:
            # The instrumented trials allocate much more (spans,
            # telemetry rows); collect up front so deferred GC pauses
            # don't land in whichever trial runs next.
            gc.collect()
            started = time.process_time()
            run_trial(instrument, period)
            row[key] = time.process_time() - started
        rows.append(row)

    def med(key):
        return statistics.median(row[key] for row in rows)

    def ratio(numerator, denominator):
        return statistics.median(
            row[numerator] / row[denominator] - 1.0 for row in rows
        )

    return {
        "workload": WORKLOAD,
        "strategy": "pure-iou",
        "prefetch": 1,
        "sample_period_s": DEFAULT_SAMPLE_PERIOD,
        "repeats": repeats,
        "timer": ("time.process_time; median of per-repeat ratios "
                  "(arms alternate within each repeat)"),
        "plain_s": round(med("plain_s"), 6),
        "traced_s": round(med("traced_s"), 6),
        "sampled_s": round(med("sampled_s"), 6),
        "trace_overhead_fraction": round(ratio("traced_s", "plain_s"), 6),
        "sampling_overhead_fraction": round(ratio("sampled_s", "traced_s"), 6),
        "total_overhead_fraction": round(ratio("sampled_s", "plain_s"), 6),
        "target": "sampling_overhead_fraction < 0.05",
    }


def test_instrumentation_is_simulation_neutral():
    """Tracing must never change what the simulation computes."""
    plain = run_trial(False)
    traced = run_trial(True, DEFAULT_SAMPLE_PERIOD)
    assert traced.transfer_s == plain.transfer_s
    assert traced.exec_s == plain.exec_s
    assert traced.bytes_total == plain.bytes_total
    assert traced.faults == plain.faults


def test_obs_overhead(benchmark):
    """CPU cost of one fully instrumented, continuously sampled trial."""
    result = benchmark(lambda: run_trial(True, DEFAULT_SAMPLE_PERIOD))
    assert result.verified


def main():
    artifact = measure()
    with open(ARTIFACT, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2)
        handle.write("\n")
    print(json.dumps(artifact, indent=2))
    guarded = artifact["sampling_overhead_fraction"]
    status = "OK" if guarded < 0.05 else "OVER TARGET"
    print(f"sampling overhead: {guarded:+.2%} ({status})")


if __name__ == "__main__":
    main()
