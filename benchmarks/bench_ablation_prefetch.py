"""Ablation: prefetch policy depth and its hit ratios (DESIGN.md §5.1).

Complements Figures 4-1/4-4 with the §4.3.3 hit-ratio narrative: the
sequential Pasmac holds ~78% at every depth, while the scattered Lisp
decays from ~40% toward ~20%, which is why deep prefetch helps one and
hurts the other.
"""

from benchmarks.conftest import run_once
from repro.experiments.ablations import prefetch_depth_study
from repro.experiments.tables import render
from repro.testbed import Testbed


def pm_start_pf7():
    return Testbed(seed=1987).migrate("pm-start", strategy="pure-iou", prefetch=7)


def test_ablation_prefetch_hit_ratios(benchmark, artifact, matrix):
    result = run_once(benchmark, pm_start_pf7)
    assert result.verified

    rows = prefetch_depth_study(matrix)
    pasmac_ratios = [row["pasmac_hit_ratio"] for row in rows]
    lisp_ratios = [row["lisp_hit_ratio"] for row in rows]
    # Pasmac steady; Lisp declining (paper §4.3.3).
    assert max(pasmac_ratios) - min(pasmac_ratios) < 0.10
    assert lisp_ratios[0] > 0.3 and lisp_ratios[-1] < 0.25
    artifact("ablation_prefetch", render(rows))
