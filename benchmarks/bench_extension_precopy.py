"""Extension bench: pre-copy (V system) vs the paper's strategies.

Regenerates the comparison the paper makes in prose (§5): pre-copying
hides transfer time from the process (downtime) but both hosts still
pay the full — and with re-dirtying, inflated — transfer cost, while
copy-on-reference cuts downtime *and* traffic.
"""

from benchmarks.conftest import run_once
from repro.experiments.tables import render
from repro.testbed import Testbed
from repro.workloads.registry import WORKLOADS


def pm_mid_precopy():
    return Testbed(seed=1987).migrate_precopy("pm-mid")


def test_extension_precopy(benchmark, artifact, matrix):
    result = run_once(benchmark, pm_mid_precopy)
    assert result.verified

    bed = Testbed(seed=1987)
    rows = []
    for name in WORKLOADS:
        precopy = bed.migrate_precopy(name)
        copy = matrix.copy(name)
        iou = matrix.iou(name)
        copy_downtime = (
            copy.excise_s + copy.core_transfer_s + copy.transfer_s + copy.insert_s
        )
        iou_downtime = (
            iou.excise_s + iou.core_transfer_s + iou.transfer_s + iou.insert_s
        )
        rows.append(
            {
                "workload": name,
                "copy_downtime_s": copy_downtime,
                "precopy_downtime_s": precopy.downtime_s,
                "iou_downtime_s": iou_downtime,
                "copy_kbytes": copy.bytes_total / 1024,
                "precopy_kbytes": precopy.bytes_total / 1024,
                "iou_kbytes": iou.bytes_total / 1024,
                "precopy_rounds": len(precopy.rounds),
            }
        )
    for row in rows:
        # IOU's downtime is the smallest of the three...
        assert row["iou_downtime_s"] <= row["precopy_downtime_s"] + 0.5
        # ...and pre-copy always pays at least pure-copy's traffic.
        assert row["precopy_kbytes"] >= row["copy_kbytes"] * 0.99
        assert row["iou_kbytes"] < row["precopy_kbytes"]
    artifact("extension_precopy", render(rows))
