"""Ablation: the RS carve cost that explains the Lisp anomaly.

Table 4-5's oddest row: Lisp resident-set shipment costs ~69 ms per
resident page, twice Pasmac's ~35 ms.  The model attributes it to
carving scattered resident pages out of the collapsed RIMAS (3 ms per
*owed* page — Lisp owes ~3,900).  Zeroing that single constant erases
the anomaly, demonstrating it is the load-bearing explanation.
"""

from benchmarks.conftest import run_once
from repro.experiments.ablations import rs_carve_study
from repro.experiments.tables import render


def test_ablation_rs_carve(benchmark, artifact):
    rows = run_once(benchmark, rs_carve_study)
    # Without carving the two are nearly equal; at 3 ms (the paper fit)
    # Lisp pays ~2x per page, as in Table 4-5.
    assert rows[0]["anomaly_ratio"] < 1.25
    at_3ms = next(r for r in rows if r["carve_ms_per_owed_page"] == 3.0)
    assert 1.6 < at_3ms["anomaly_ratio"] < 2.4
    artifact("ablation_rs_carve", render(rows))
