"""Extension bench: automatic migration policies (§6 future work).

Compares makespans of a job mix under no migration, an eager
pure-copy balancer, and the breakeven-aware lazy balancer — on two
mixes: a compute-bound one (migration of any kind wins) and a
memory-giant one (lazy transfer is what makes migration affordable).
"""

from benchmarks.conftest import run_once
from repro.experiments.tables import render
from repro.loadbalance import (
    BreakevenPolicy,
    EagerCopyPolicy,
    NoMigrationPolicy,
    Scenario,
)

COMPUTE_MIX = ["chess", "chess", "pm-mid", "minprog"]
MEMORY_MIX = ["lisp-del", "lisp-del", "lisp-t"]


def balanced_compute_mix():
    return Scenario(COMPUTE_MIX, hosts=3, seed=1987).run(BreakevenPolicy())


def test_extension_autobalance(benchmark, artifact):
    result = run_once(benchmark, balanced_compute_mix)
    assert result.verified

    rows = []
    for label, mix, hosts in (
        ("compute-bound", COMPUTE_MIX, 3),
        ("memory-giant", MEMORY_MIX, 2),
    ):
        scenario = Scenario(mix, hosts=hosts, seed=1987)
        for policy in (NoMigrationPolicy(), EagerCopyPolicy(), BreakevenPolicy()):
            outcome = scenario.run(policy)
            rows.append(
                {
                    "mix": label,
                    "policy": outcome.policy_name,
                    "makespan_s": outcome.makespan_s,
                    "migrations": len(outcome.migrations),
                    "verified": outcome.verified,
                }
            )
    by_key = {(r["mix"], r["policy"]): r for r in rows}
    # Migration always helps these mixes...
    assert (
        by_key[("compute-bound", "breakeven-lazy")]["makespan_s"]
        < by_key[("compute-bound", "no-migration")]["makespan_s"]
    )
    # ...and the lazy policy beats eager copying for the memory giants.
    assert (
        by_key[("memory-giant", "breakeven-lazy")]["makespan_s"]
        < by_key[("memory-giant", "eager-copy")]["makespan_s"]
    )
    artifact("extension_autobalance", render(rows))
