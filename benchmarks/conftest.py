"""Benchmark fixtures.

Every bench regenerates one of the paper's tables or figures.  The
simulation cells are shared through a session-scoped
:class:`~repro.experiments.matrix.TrialMatrix` so the artifact side of
each bench is cheap; what each benchmark *times* is a representative
fresh simulation for its experiment (the meaningful unit of work).

Artifacts are written to ``benchmarks/out/`` so the regenerated rows
can be diffed against the paper after a run.
"""

import os

import pytest

from repro.experiments.matrix import TrialMatrix

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


@pytest.fixture(scope="session")
def matrix():
    return TrialMatrix(seed=1987)


@pytest.fixture(scope="session")
def artifact():
    """Writer: artifact('table_4_1', text) -> benchmarks/out/table_4_1.txt."""
    os.makedirs(OUT_DIR, exist_ok=True)

    def write(name, text):
        path = os.path.join(OUT_DIR, f"{name}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        return path

    return write


def run_once(benchmark, func):
    """Run ``func`` exactly once under the benchmark timer."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
