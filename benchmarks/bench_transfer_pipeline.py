"""Batched/pipelined demand-paging benchmark (docs/transfer-plans.md).

Sweeps the ``(batch, pipeline)`` knob pair over the two fault-heavy
pure-IOU workloads (pm-mid and lisp-del, seed 1987) and records, per
point: total imaginary-fault stall time, the fault/request count,
stall p50/p99, end-to-end time, and bytes on the wire.  One adaptive
row per workload rides along for comparison.  The artifact lands in
``BENCH_transfer_pipeline.json`` at the repo root.

The headline claims checked here:

* ``batch=1, pipeline=1`` reproduces the pre-batching per-page
  protocol **exactly** — the golden transfer/exec timings recorded
  before the plan layer landed must match to the last digit, and
* ``batch=8, pipeline=4`` cuts total stall time by >= 2x on both
  workloads (the tentpole acceptance bar).

Run directly (writes the JSON artifact)::

    PYTHONPATH=src python benchmarks/bench_transfer_pipeline.py

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_transfer_pipeline.py
"""

import json
import os
import time

from repro.testbed import Testbed

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
ARTIFACT = os.path.join(REPO_ROOT, "BENCH_transfer_pipeline.json")

SEED = 1987
#: The fault-heavy representatives the acceptance bar applies to.
WORKLOADS = ("pm-mid", "lisp-del")
#: (batch, pipeline) points swept, serial first.
POINTS = ((1, 1), (4, 2), (8, 4), (16, 8))
#: The point the >= 2x stall-reduction bar is judged at.
HEADLINE = (8, 4)
STALL_TARGET = 2.0

#: Pre-refactor golden timings at the serial point:
#: workload -> (transfer_s, exec_s, migration_s, bytes_total, pages).
GOLDEN_SERIAL = {
    "pm-mid": (
        0.20215840000000052, 75.55433519999977, 3.735618800000001,
        309451, 449,
    ),
    "lisp-del": (
        0.21001039999999804, 169.81878320000018, 5.4425987999999945,
        485601, 709,
    ),
}


def _stall_stats(result):
    """(total stall seconds, p50, p99) of one trial's imaginary faults."""
    family = result.obs.registry.get("imag_fault_seconds")
    if family is None or not len(family):
        return 0.0, None, None
    ((_key, child),) = family.items()
    return child.sum, child.percentile(0.50), child.percentile(0.99)


def run_point(workload, batch, pipeline, strategy="pure-iou"):
    """One swept point: the MigrationResult plus its wall-clock cost."""
    started = time.perf_counter()
    result = Testbed(seed=SEED).migrate(
        workload, strategy=strategy,
        options={"batch": batch, "pipeline": pipeline},
    )
    return result, time.perf_counter() - started


def _row(workload, strategy, batch, pipeline, result, wall_s):
    """One artifact row."""
    stall_s, p50, p99 = _stall_stats(result)
    return {
        "workload": workload,
        "strategy": strategy,
        "batch": batch,
        "pipeline": pipeline,
        "stall_s": round(stall_s, 6),
        "stall_p50_s": None if p50 is None else round(p50, 6),
        "stall_p99_s": None if p99 is None else round(p99, 6),
        "imag_faults": result.faults.get("imaginary", 0),
        "transfer_s": round(result.transfer_s, 6),
        "exec_s": round(result.exec_s, 6),
        "migration_s": round(result.migration_s, 6),
        "end_to_end_s": round(result.migration_s + result.exec_s, 6),
        "bytes_total": result.bytes_total,
        "pages_transferred": result.pages_transferred,
        "verified": result.verified,
        "wall_s": round(wall_s, 3),
    }


def measure():
    """The artifact dict: the knob sweep plus one adaptive row each."""
    rows = []
    reductions = {}
    serial_matches = {}
    for workload in WORKLOADS:
        serial_stall = None
        for batch, pipeline in POINTS:
            result, wall_s = run_point(workload, batch, pipeline)
            stall_s, _p50, _p99 = _stall_stats(result)
            if (batch, pipeline) == (1, 1):
                serial_stall = stall_s
                observed = (
                    result.transfer_s, result.exec_s, result.migration_s,
                    result.bytes_total, result.pages_transferred,
                )
                serial_matches[workload] = (
                    observed == GOLDEN_SERIAL[workload]
                )
            if (batch, pipeline) == HEADLINE and serial_stall:
                reductions[workload] = round(serial_stall / stall_s, 3)
            rows.append(
                _row(workload, "pure-iou", batch, pipeline, result, wall_s)
            )
        batch, pipeline = HEADLINE
        result, wall_s = run_point(
            workload, batch, pipeline, strategy="adaptive"
        )
        rows.append(
            _row(workload, "adaptive", batch, pipeline, result, wall_s)
        )
    return {
        "scenario": {
            "seed": SEED,
            "workloads": list(WORKLOADS),
            "points": [list(point) for point in POINTS],
            "headline_point": list(HEADLINE),
        },
        "rows": rows,
        "stall_target": STALL_TARGET,
        "stall_reduction": reductions,
        "serial_matches_golden": serial_matches,
    }


def test_serial_point_matches_pre_refactor_timings():
    """batch=1/pipeline=1 replays the pre-plan protocol exactly."""
    for workload, expected in GOLDEN_SERIAL.items():
        result, _ = run_point(workload, 1, 1)
        observed = (
            result.transfer_s, result.exec_s, result.migration_s,
            result.bytes_total, result.pages_transferred,
        )
        assert observed == expected, workload
        assert result.verified


def test_headline_point_halves_stall_time():
    """The acceptance bar: >= 2x stall reduction on both workloads."""
    for workload in WORKLOADS:
        serial, _ = run_point(workload, 1, 1)
        batched, _ = run_point(workload, *HEADLINE)
        assert serial.verified and batched.verified
        serial_stall, _, _ = _stall_stats(serial)
        batched_stall, _, _ = _stall_stats(batched)
        assert serial_stall >= STALL_TARGET * batched_stall, workload


def main():
    artifact = measure()
    with open(ARTIFACT, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2)
        handle.write("\n")
    print(json.dumps(artifact, indent=2))
    for workload, reduction in artifact["stall_reduction"].items():
        ok = (
            reduction >= artifact["stall_target"]
            and artifact["serial_matches_golden"][workload]
        )
        print(f"{workload}: stall reduction {reduction}x at "
              f"batch={HEADLINE[0]}/pipeline={HEADLINE[1]}, serial golden "
              f"{'match' if artifact['serial_matches_golden'][workload] else 'MISMATCH'} "
              f"({'OK' if ok else 'UNDER TARGET'})")


if __name__ == "__main__":
    main()
