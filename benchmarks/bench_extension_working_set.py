"""Extension bench: true working sets vs resident sets.

§4.5 concludes resident sets are "poor predictors of the data required
by the process at its remote site" because Accent's physical memory
doubles as a disk cache.  This bench ships the *actual* Denning working
set (pages referenced in the last τ, tracked by the kernel) and shows
the prediction failure was the approximation, not the idea: WS beats RS
end-to-end for every representative while shipping far fewer pages.
"""

from benchmarks.conftest import run_once
from repro.experiments.tables import render
from repro.migration.strategy import WORKING_SET
from repro.testbed import Testbed
from repro.workloads.registry import WORKLOADS


def pm_end_working_set():
    return Testbed(seed=1987).migrate("pm-end", strategy=WORKING_SET)


def test_extension_working_set(benchmark, artifact, matrix):
    result = run_once(benchmark, pm_end_working_set)
    assert result.verified

    bed = Testbed(seed=1987)
    rows = []
    for name in WORKLOADS:
        ws = bed.migrate(name, strategy=WORKING_SET)
        rs = matrix.rs(name)
        iou = matrix.iou(name)
        rows.append(
            {
                "workload": name,
                "ws_pages_shipped": ws.pages_bulk,
                "rs_pages_shipped": rs.pages_bulk,
                "ws_te_s": ws.transfer_plus_exec_s,
                "rs_te_s": rs.transfer_plus_exec_s,
                "iou_te_s": iou.transfer_plus_exec_s,
            }
        )
    for row in rows:
        assert row["ws_pages_shipped"] <= row["rs_pages_shipped"]
        assert row["ws_te_s"] <= row["rs_te_s"] * 1.01
    artifact("extension_working_set", render(rows))
