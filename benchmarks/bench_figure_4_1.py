"""Figure 4-1: remote execution times (strategy × prefetch).

Times the fault-heaviest remote execution (Lisp-Del pure-IOU: ~700
imaginary faults over the network) and regenerates the figure's rows.
"""

from benchmarks.conftest import run_once
from repro.experiments.figures import figure_4_1
from repro.experiments.tables import render
from repro.testbed import Testbed


def lisp_del_iou_execution():
    return Testbed(seed=1987).migrate("lisp-del", strategy="pure-iou")


def test_figure_4_1(benchmark, artifact, matrix):
    result = run_once(benchmark, lisp_del_iou_execution)
    assert result.verified

    rows = figure_4_1(matrix)
    by_name = {row["workload"]: row for row in rows}
    # §4.3.3 anchors.
    assert 30 < by_name["minprog"]["iou_pf0"] / by_name["minprog"]["copy"] < 60
    assert by_name["chess"]["iou_pf0"] / by_name["chess"]["copy"] < 1.06
    artifact("figure_4_1", render(rows))
