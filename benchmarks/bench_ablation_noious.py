"""Ablation: the NoIOUs bit / NetMsgServer IOU caching (DESIGN.md §5.2).

Pure-IOU migration leans entirely on the sending NetMsgServer's
initiative to cache RealMem and substitute IOUs (paper §2.4).  This
ablation compares the same migration with caching allowed (NoIOUs
clear) and inhibited (NoIOUs set — which *is* pure-copy), quantifying
what the single header bit is worth.
"""

from benchmarks.conftest import run_once
from repro.experiments.ablations import noious_study
from repro.experiments.tables import render
from repro.testbed import Testbed


def trial():
    return Testbed(seed=1987).migrate("pm-mid", strategy="pure-iou")


def test_ablation_noious(benchmark, artifact, matrix):
    result = run_once(benchmark, trial)
    assert result.verified

    rows = noious_study(matrix)
    # Caching always slashes the transfer phase...
    assert all(row["transfer_ratio"] > 30 for row in rows)
    # ...by up to three orders of magnitude for the Lisp giants.
    assert max(row["transfer_ratio"] for row in rows) > 500
    artifact("ablation_noious", render(rows))
