"""Figure 4-4: message-handling time per trial.

Times the message-heaviest trial (Lisp-Del pure-copy: ~4,300 page
fragments through both NetMsgServers) and regenerates the rows.
"""

from benchmarks.conftest import run_once
from repro.experiments.figures import figure_4_4
from repro.experiments.tables import render
from repro.testbed import Testbed


def lisp_del_copy():
    return Testbed(seed=1987).migrate(
        "lisp-del", strategy="pure-copy", run_remote=False
    )


def test_figure_4_4(benchmark, artifact, matrix):
    result = run_once(benchmark, lisp_del_copy)
    assert result.message_handling_s > 100  # simulated seconds

    rows = figure_4_4(matrix)
    for row in rows:
        assert row["iou_pf0"] < row["copy"]
    artifact("figure_4_4", render(rows, float_format="{:.1f}"))
