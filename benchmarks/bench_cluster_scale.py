"""Cluster-scale concurrent-migration benchmark (docs/cluster.md).

Sweeps the per-host in-flight cap over the 16-host / 64-process stress
scenario (seed 7) and records, per cap: migration throughput, p50/p99
freeze time, peak and sustained concurrency, and peak queue depth.
The artifact lands in ``BENCH_cluster_scale.json`` at the repo root,
together with the determinism hash of the default-cap run (two
executions of this benchmark must agree byte for byte).

The headline claims checked here:

* at the default cap the cluster sustains >= 4 concurrent in-flight
  migrations (the tentpole acceptance bar), and
* raising the cap trades queueing delay for concurrency without ever
  violating the per-host limit.

Run directly (writes the JSON artifact)::

    PYTHONPATH=src python benchmarks/bench_cluster_scale.py

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_cluster_scale.py
"""

import json
import os
import time

from repro.cluster import StressConfig, run_stress

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
ARTIFACT = os.path.join(REPO_ROOT, "BENCH_cluster_scale.json")

#: The stress scenario: 16 hosts, 64 processes, one request per process.
HOSTS = 16
PROCS = 64
SEED = 7
#: Per-host caps swept (4 is the default the acceptance bar applies to).
CAPS = (1, 2, 4, 8)
DEFAULT_CAP = 4
#: Sustained-concurrency floor at the default cap.
SUSTAINED_TARGET = 4


def run_point(cap):
    """One swept point: the StressResult plus its wall-clock cost."""
    config = StressConfig(hosts=HOSTS, procs=PROCS, inflight_cap=cap,
                          seed=SEED)
    started = time.perf_counter()
    result = run_stress(config)
    return result, time.perf_counter() - started


def measure():
    """The artifact dict: one row per cap, hash of the default run."""
    rows = []
    default_hash = None
    for cap in CAPS:
        result, wall_s = run_point(cap)
        if cap == DEFAULT_CAP:
            default_hash = result.determinism_hash
        rows.append({
            "inflight_cap": cap,
            "outcomes": dict(sorted(result.outcomes.items())),
            "makespan_s": round(result.makespan_s, 6),
            "throughput_per_s": round(result.throughput_per_s, 6),
            "freeze_p50_s": round(result.freeze_percentile(0.50), 6),
            "freeze_p99_s": round(result.freeze_percentile(0.99), 6),
            "peak_inflight": result.peak_inflight,
            "sustained_inflight": result.sustained_inflight,
            "peak_host_inflight": result.peak_host_inflight,
            "peak_queue_depth": result.peak_queue,
            "events_dispatched": result.events_dispatched,
            "verified": result.verified,
            "wall_s": round(wall_s, 3),
        })
    return {
        "scenario": {
            "hosts": HOSTS,
            "procs": PROCS,
            "migrations": PROCS,
            "seed": SEED,
            "arrival": "uniform",
            "rate_per_s": 2.0,
        },
        "rows": rows,
        "default_cap": DEFAULT_CAP,
        "determinism_hash": default_hash,
        "sustained_target": SUSTAINED_TARGET,
    }


def test_default_cap_sustains_target_concurrency():
    """The acceptance bar: >= 4 migrations concurrently in flight,
    held for at least a second of simulated time, with p99 freeze
    recorded."""
    result, _ = run_point(DEFAULT_CAP)
    assert result.verified
    assert result.sustained_inflight >= SUSTAINED_TARGET
    assert result.freeze_percentile(0.99) is not None


def test_cap_sweep_is_monotone_in_queueing():
    """Tighter caps queue more: peak queue depth never increases with
    the cap, and the per-host limit holds at every point."""
    depths = []
    for cap in CAPS:
        result, _ = run_point(cap)
        assert result.peak_host_inflight <= cap
        depths.append(result.peak_queue)
    assert depths == sorted(depths, reverse=True)


def main():
    artifact = measure()
    with open(ARTIFACT, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2)
        handle.write("\n")
    print(json.dumps(artifact, indent=2))
    default = next(
        row for row in artifact["rows"]
        if row["inflight_cap"] == artifact["default_cap"]
    )
    ok = default["sustained_inflight"] >= artifact["sustained_target"]
    print(f"sustained in-flight at cap {artifact['default_cap']}: "
          f"{default['sustained_inflight']} "
          f"({'OK' if ok else 'UNDER TARGET'})")


if __name__ == "__main__":
    main()
