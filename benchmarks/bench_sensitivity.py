"""Sensitivity bench: full calibration perturbation sweep.

Halves and doubles every perturbable constant, re-runs the probe
matrix, and records which of the paper's qualitative conclusions held.
A robust reproduction shows an empty "fragile" list.
"""

from benchmarks.conftest import run_once
from repro.experiments.sensitivity import (
    PERTURBABLE,
    fragile_conclusions,
    sweep,
)
from repro.experiments.tables import render


def full_sweep():
    return sweep(parameters=PERTURBABLE, factors=(0.5, 2.0))


def test_sensitivity_sweep(benchmark, artifact):
    rows = run_once(benchmark, full_sweep)
    assert len(rows) == 2 * len(PERTURBABLE)
    fragile = fragile_conclusions(rows)
    assert fragile == [], f"fragile conclusions: {fragile}"
    table = [
        {
            "parameter": row["parameter"],
            "factor": row["factor"],
            "all_hold": row["all_hold"],
        }
        for row in rows
    ]
    artifact("sensitivity", render(table))
