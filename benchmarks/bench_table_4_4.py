"""Table 4-4: process excision times.

Times the worst-case excision (Lisp-Del: 4 GB sparse space, the most
complex process map) and regenerates the table.
"""

from benchmarks.conftest import run_once
from repro.experiments.paper_data import TABLE_4_4
from repro.experiments.tables import render, table_4_4
from repro.testbed import Testbed
from repro.workloads.builder import build_process
from repro.workloads.registry import WORKLOADS


def excise_lisp_del():
    world = Testbed(seed=1987).world()
    build_process(world.source, WORKLOADS["lisp-del"], world.streams)
    proc = world.engine.process(
        world.source.kernel.excise_process("lisp-del")
    )
    world.engine.run(until=proc)
    return world.engine.now  # simulated excision time


def test_table_4_4(benchmark, artifact, matrix):
    simulated = run_once(benchmark, excise_lisp_del)
    assert abs(simulated - TABLE_4_4["lisp-del"][2]) / TABLE_4_4["lisp-del"][2] < 0.15

    rows = table_4_4(matrix)
    artifact("table_4_4", render(rows))
