"""Content-addressed page store benchmark (docs/content-store.md).

A fork-heavy scenario: ``SIBLINGS`` processes built from one workload
spec (identical page contents — exact fork siblings, the shared-code /
shared-data case the store targets) migrate alpha -> beta one after
another in a single world, each running its reference trace at the
destination.  Arms:

* ``off``        — content store disabled (the pre-store protocol);
* ``store``      — store on, pure-IOU: later siblings' imaginary
  faults resolve from beta's local content cache instead of crossing
  the wire;
* ``dedup``      — store + wire dedup, pure-IOU;
* ``dedup-copy`` — store + wire dedup under pure-copy: bulk shipments
  replace pages beta already holds with 20-byte content references.

The headline claims checked here:

* pure-IOU with the store cuts **bytes on the wire by >= 1.5x** and
  total imaginary-fault stall measurably (the tentpole acceptance
  bar), and
* the ``off`` arm reproduces the store-less protocol exactly (golden
  bytes/stall match, pinned below).

Run directly (writes ``BENCH_content_store.json``)::

    PYTHONPATH=src python benchmarks/bench_content_store.py

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_content_store.py
"""

import json
import os

from repro.migration.plan import TransferOptions
from repro.migration.strategy import Strategy
from repro.sim import SeededStreams
from repro.testbed import Testbed
from repro.workloads.builder import build_process
from repro.workloads.registry import workload_by_name
from repro.workloads.runner import RemoteRunResult, remote_body

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
ARTIFACT = os.path.join(REPO_ROOT, "BENCH_content_store.json")

SEED = 1987
WORKLOAD = "minprog"
SIBLINGS = 4
#: Acceptance bar: bytes-on-wire reduction of the store arm vs off.
BYTES_TARGET = 1.5

#: The benchmark's arms: name -> TransferOptions kwargs.
ARMS = (
    ("off", {}),
    ("store", {"store": True}),
    ("dedup", {"dedup": True}),
    ("dedup-copy", {"strategy": "pure-copy", "dedup": True}),
)

#: Store-off goldens for the scenario above: (bytes_total, stall_s,
#: faults).  The off arm must reproduce the pre-store protocol to the
#: last byte — regenerate only on an intentional protocol change.
GOLDEN_OFF = (78364, 10.783181, 96)


def _family_sum(registry, name):
    family = registry.get(name)
    if family is None:
        return 0
    return sum(child.value for _, child in family.items())


def run_arm(options):
    """Migrate SIBLINGS identical processes sequentially; measure."""
    options = TransferOptions.coerce(options)
    world = Testbed(seed=SEED).world()
    spec = workload_by_name(WORKLOAD)
    strategy = Strategy.by_name(options.strategy)
    # Each sibling builds from a *fresh* stream factory, so layouts and
    # traces are identical — exact forks sharing every page's bytes.
    builts = [
        (
            f"{spec.name}-s{i}",
            build_process(
                world.source, spec, SeededStreams(SEED),
                name=f"{spec.name}-s{i}",
            ),
        )
        for i in range(SIBLINGS)
    ]
    world.apply_options(options)
    run_results = []

    def trial():
        world.metrics.mark("trial.start")
        for name, built in builts:
            insertion = world.dest_manager.expect_insertion(name)
            yield from world.source_manager.migrate(
                name, world.dest_manager, strategy, options=options
            )
            inserted = yield insertion
            run_result = RemoteRunResult(name)
            yield from remote_body(
                world.dest, inserted, built.trace, run_result
            )
            run_results.append(run_result)
        world.metrics.mark("trial.end")

    process = world.engine.process(trial(), name="bench-store")
    world.engine.run(until=process)
    world.stop_telemetry()
    world.engine.run()

    registry = world.obs.registry
    stall_family = registry.get("imag_fault_seconds")
    stall_s = (
        sum(child.sum for _, child in stall_family.items())
        if stall_family is not None
        else 0.0
    )
    local_hits = 0
    peer_hits = 0
    family = registry.get("store_fault_served_total")
    if family is not None:
        for (_host, source), child in family.items():
            if source == "local":
                local_hits += child.value
            elif source == "peer":
                peer_hits += child.value
    return {
        "bytes_total": world.metrics.total_link_bytes,
        "stall_s": round(stall_s, 6),
        "faults": world.metrics.faults.get("imaginary", 0),
        "end_to_end_s": round(
            world.metrics.span("trial.start", "trial.end"), 6
        ),
        "dedup_pages": _family_sum(registry, "store_dedup_pages_total"),
        "dedup_bytes_saved": _family_sum(
            registry, "store_dedup_bytes_saved_total"
        ),
        "local_hits": local_hits,
        "peer_hits": peer_hits,
        "verified": all(r.verified for r in run_results),
    }


def measure():
    """The artifact dict: one row per arm plus the headline ratios."""
    rows = {}
    for arm, kwargs in ARMS:
        row = run_arm(TransferOptions(**kwargs))
        row["arm"] = arm
        rows[arm] = row
    off, store = rows["off"], rows["store"]
    return {
        "scenario": {
            "seed": SEED,
            "workload": WORKLOAD,
            "siblings": SIBLINGS,
            "arms": [arm for arm, _ in ARMS],
        },
        "rows": [rows[arm] for arm, _ in ARMS],
        "bytes_target": BYTES_TARGET,
        "bytes_reduction": round(
            off["bytes_total"] / store["bytes_total"], 3
        ),
        "stall_reduction": round(off["stall_s"] / store["stall_s"], 3),
        "off_matches_golden": (
            off["bytes_total"], off["stall_s"], off["faults"]
        ) == GOLDEN_OFF,
    }


def test_store_off_arm_matches_golden():
    """The off arm replays the store-less protocol exactly."""
    row = run_arm(TransferOptions())
    assert (row["bytes_total"], row["stall_s"], row["faults"]) == GOLDEN_OFF
    assert row["verified"]


def test_store_cuts_bytes_and_stall():
    """The acceptance bar: >= 1.5x bytes on the fork-sibling workload,
    plus a measurable stall reduction, with every page verified."""
    off = run_arm(TransferOptions())
    store = run_arm(TransferOptions(store=True))
    assert off["verified"] and store["verified"]
    assert off["bytes_total"] >= BYTES_TARGET * store["bytes_total"]
    assert store["stall_s"] < off["stall_s"]
    assert store["local_hits"] > 0


def test_wire_dedup_collapses_bulk_shipment():
    """Pure-copy dedup replaces sibling pages with content refs."""
    off = run_arm(TransferOptions(strategy="pure-copy"))
    dedup = run_arm(TransferOptions(strategy="pure-copy", dedup=True))
    assert off["verified"] and dedup["verified"]
    assert dedup["dedup_pages"] > 0
    assert off["bytes_total"] >= 2.0 * dedup["bytes_total"]


def main():
    artifact = measure()
    with open(ARTIFACT, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2)
        handle.write("\n")
    print(json.dumps(artifact, indent=2))
    ok = (
        artifact["bytes_reduction"] >= artifact["bytes_target"]
        and artifact["stall_reduction"] > 1.0
        and artifact["off_matches_golden"]
    )
    print(
        f"bytes reduction {artifact['bytes_reduction']}x, stall reduction "
        f"{artifact['stall_reduction']}x, off arm golden "
        f"{'match' if artifact['off_matches_golden'] else 'MISMATCH'} "
        f"({'OK' if ok else 'UNDER TARGET'})"
    )


if __name__ == "__main__":
    main()
