"""Ablation: the working-set window τ (extension, DESIGN.md §4b).

τ→0 degenerates to pure-IOU shipment (nothing pre-shipped); τ→∞ ships
every page ever referenced.  The calibrated τ=10 s forms a local sweet
spot for mid-utilisation workloads.
"""

from benchmarks.conftest import run_once
from repro.experiments.ablations import ws_window_study
from repro.experiments.tables import render


def test_ablation_ws_window(benchmark, artifact):
    rows = run_once(
        benchmark, lambda: ws_window_study(windows_s=(0.5, 2.0, 10.0, 60.0))
    )
    shipped = [row["pages_shipped"] for row in rows]
    assert shipped == sorted(shipped)
    te = {row["window_s"]: row["transfer_plus_exec_s"] for row in rows}
    assert te[10.0] < te[0.5] and te[10.0] < te[60.0]
    artifact("ablation_ws_window", render(rows))
