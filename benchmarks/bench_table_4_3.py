"""Table 4-3: percent of address space transferred (IOU / RS).

Times one pure-IOU migration trial end-to-end (the unit of work behind
the IOU column) and regenerates the table from the shared matrix.
"""

from benchmarks.conftest import run_once
from repro.experiments.tables import render, table_4_3
from repro.testbed import Testbed


def one_iou_trial():
    return Testbed(seed=1987).migrate("pm-start", strategy="pure-iou")


def test_table_4_3(benchmark, artifact, matrix):
    result = run_once(benchmark, one_iou_trial)
    assert result.verified

    rows = table_4_3(matrix)
    by_name = {row["workload"]: row for row in rows}
    assert abs(by_name["lisp-del"]["iou_pct_of_real"] - 16.5) < 0.5
    assert abs(by_name["chess"]["rs_pct_of_real"] - 60.0) < 1.0
    artifact("table_4_3", render(rows))
