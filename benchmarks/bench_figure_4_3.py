"""Figure 4-3: bytes transferred per trial.

Times a resident-set trial (bulk + demand traffic mixed) and
regenerates the figure's rows.
"""

from benchmarks.conftest import run_once
from repro.experiments.figures import figure_4_3
from repro.experiments.tables import render
from repro.testbed import Testbed


def chess_rs_trial():
    return Testbed(seed=1987).migrate("chess", strategy="resident-set")


def test_figure_4_3(benchmark, artifact, matrix):
    result = run_once(benchmark, chess_rs_trial)
    assert result.verified

    rows = figure_4_3(matrix)
    for row in rows:
        assert row["iou_pf0"] < row["copy"]
    artifact("figure_4_3", render(rows, float_format="{:.0f}"))
