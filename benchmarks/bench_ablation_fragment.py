"""Ablation: NetMsgServer fragment size (DESIGN.md §5.4).

The testbed fragments physical shipments into 576-byte pieces (one
page plus descriptors).  Larger fragments amortise the per-hop fixed
cost over more bytes, cutting bulk-copy time — at the price of a
coarser unit of loss/interleaving.  This sweep quantifies the knob on
the PM-Start pure-copy transfer.
"""

from benchmarks.conftest import run_once
from repro.experiments.ablations import fragment_size_study
from repro.experiments.tables import render


def test_ablation_fragment_size(benchmark, artifact):
    rows = run_once(benchmark, fragment_size_study)
    # Bigger fragments -> faster bulk copy, monotonically.
    times = [row["copy_transfer_s"] for row in rows]
    assert times == sorted(times, reverse=True)
    # The default sits where doubling buys less than 2x.
    assert times[1] / times[3] < 2.5
    artifact("ablation_fragment", render(rows))
