"""Figure 4-2: end-to-end percent speedup over pure-copy.

Times one full lazy trial with deep prefetch (PM-End IOU PF15 — a
best-case Pasmac configuration) and regenerates the figure's rows.
"""

from benchmarks.conftest import run_once
from repro.experiments.figures import figure_4_2
from repro.experiments.tables import render
from repro.testbed import Testbed


def pm_end_pf15():
    return Testbed(seed=1987).migrate(
        "pm-end", strategy="pure-iou", prefetch=15
    )


def test_figure_4_2(benchmark, artifact, matrix):
    result = run_once(benchmark, pm_end_pf15)
    assert result.verified

    rows = figure_4_2(matrix)
    for row in rows:
        # PF1 never loses to PF0 (within a point of noise).
        assert row["iou_pf1"] >= row["iou_pf0"] - 1.0
    artifact("figure_4_2", render(rows, float_format="{:.1f}"))
